package logic

import "fmt"

// rewrite.go implements the §4 rewrite pipeline:
//
//  1. implications are eliminated and negations pushed to the atoms (NNF),
//  2. bound variables are standardized apart,
//  3. quantifiers are pulled into a prenex prefix (the ∃-pull-up of §4.3 is
//     subsumed: every quantifier is pulled up),
//  4. the leading block of same-kind quantifiers is dropped and replaced by
//     a validity (∀) or satisfiability (∃) check (§4.1),
//  5. remaining universal quantifiers are pushed down across conjunctions
//     (§4.3, Rule 5), with mini-scoping of quantifiers over subformulas
//     that do not mention the bound variable.
//
// The pipeline transforms sentences only (no free variables); Analyze closes
// formulas before rewriting.

// CheckMode says how the BDD of the rewritten formula decides the original
// sentence.
type CheckMode int

const (
	// CheckValidity: the sentence holds iff the BDD equals True.
	CheckValidity CheckMode = iota
	// CheckSatisfiability: the sentence holds iff the BDD differs from False.
	CheckSatisfiability
)

func (m CheckMode) String() string {
	if m == CheckValidity {
		return "validity"
	}
	return "satisfiability"
}

// ElimImplies replaces every a => b with (not a) or b.
func ElimImplies(f Formula) Formula {
	switch g := f.(type) {
	case Implies:
		return Or{L: Not{F: ElimImplies(g.L)}, R: ElimImplies(g.R)}
	case Not:
		return Not{F: ElimImplies(g.F)}
	case And:
		return And{L: ElimImplies(g.L), R: ElimImplies(g.R)}
	case Or:
		return Or{L: ElimImplies(g.L), R: ElimImplies(g.R)}
	case Quant:
		return Quant{All: g.All, Vars: g.Vars, F: ElimImplies(g.F)}
	default:
		return f
	}
}

// NNF pushes negations down to the atoms. The input must be implication
// free.
func NNF(f Formula) Formula {
	switch g := f.(type) {
	case Not:
		switch h := g.F.(type) {
		case Not:
			return NNF(h.F)
		case And:
			return Or{L: NNF(Not{F: h.L}), R: NNF(Not{F: h.R})}
		case Or:
			return And{L: NNF(Not{F: h.L}), R: NNF(Not{F: h.R})}
		case Quant:
			return Quant{All: !h.All, Vars: h.Vars, F: NNF(Not{F: h.F})}
		case Truth:
			return Truth{Value: !h.Value}
		case Implies:
			panic("logic: NNF on formula with implications")
		default:
			return g // negated atom
		}
	case And:
		return And{L: NNF(g.L), R: NNF(g.R)}
	case Or:
		return Or{L: NNF(g.L), R: NNF(g.R)}
	case Quant:
		return Quant{All: g.All, Vars: g.Vars, F: NNF(g.F)}
	case Implies:
		panic("logic: NNF on formula with implications")
	default:
		return f
	}
}

// StandardizeApart renames every bound variable to a globally fresh name so
// that no two quantifiers bind the same name and no bound name collides with
// a free name. Prenexing requires it.
func StandardizeApart(f Formula) Formula {
	counter := 0
	var rename func(f Formula, env map[string]string) Formula
	renameTerm := func(t Term, env map[string]string) Term {
		if v, ok := t.(Var); ok {
			if n, ok := env[v.Name]; ok {
				return Var{Name: n}
			}
		}
		return t
	}
	rename = func(f Formula, env map[string]string) Formula {
		switch g := f.(type) {
		case Pred:
			args := make([]Term, len(g.Args))
			for i, a := range g.Args {
				args[i] = renameTerm(a, env)
			}
			return Pred{Table: g.Table, Args: args}
		case Eq:
			return Eq{L: renameTerm(g.L, env), R: renameTerm(g.R, env)}
		case Neq:
			return Neq{L: renameTerm(g.L, env), R: renameTerm(g.R, env)}
		case In:
			return In{T: renameTerm(g.T, env), Values: g.Values}
		case Not:
			return Not{F: rename(g.F, env)}
		case And:
			return And{L: rename(g.L, env), R: rename(g.R, env)}
		case Or:
			return Or{L: rename(g.L, env), R: rename(g.R, env)}
		case Implies:
			return Implies{L: rename(g.L, env), R: rename(g.R, env)}
		case Quant:
			inner := make(map[string]string, len(env)+len(g.Vars))
			for k, v := range env {
				inner[k] = v
			}
			vars := make([]string, len(g.Vars))
			for i, v := range g.Vars {
				counter++
				fresh := fmt.Sprintf("%s$%d", v, counter)
				inner[v] = fresh
				vars[i] = fresh
			}
			return Quant{All: g.All, Vars: vars, F: rename(g.F, inner)}
		case Truth:
			return g
		default:
			panic(fmt.Sprintf("logic: unknown formula type %T", f))
		}
	}
	return rename(f, map[string]string{})
}

// quantStep is one variable of a prenex prefix.
type quantStep struct {
	all bool
	v   string
}

// Prenex converts an implication-free NNF formula with standardized-apart
// bound variables into prenex normal form: it returns the quantifier prefix
// (outermost first) and the quantifier-free matrix.
func Prenex(f Formula) ([]quantStep, Formula) {
	switch g := f.(type) {
	case Quant:
		inner, matrix := Prenex(g.F)
		prefix := make([]quantStep, 0, len(g.Vars)+len(inner))
		for _, v := range g.Vars {
			prefix = append(prefix, quantStep{all: g.All, v: v})
		}
		return append(prefix, inner...), matrix
	case And:
		lp, lm := Prenex(g.L)
		rp, rm := Prenex(g.R)
		return append(lp, rp...), And{L: lm, R: rm}
	case Or:
		lp, lm := Prenex(g.L)
		rp, rm := Prenex(g.R)
		return append(lp, rp...), Or{L: lm, R: rm}
	case Not:
		// NNF: negation only wraps atoms, which contain no quantifiers.
		return nil, f
	default:
		return nil, f
	}
}

// BuildPrefix re-attaches a quantifier prefix to a matrix, merging adjacent
// same-kind quantifiers into one Quant node.
func BuildPrefix(prefix []quantStep, matrix Formula) Formula {
	f := matrix
	for i := len(prefix) - 1; i >= 0; i-- {
		vars := []string{prefix[i].v}
		for i > 0 && prefix[i-1].all == prefix[i].all {
			i--
			vars = append([]string{prefix[i].v}, vars...)
		}
		f = Quant{All: prefix[i].all, Vars: vars, F: f}
	}
	return f
}

// StripLeading drops the leading maximal same-kind quantifier block of a
// prenex prefix (§4.1) and returns the check mode for what remains: a
// leading ∀-block means the remainder must be valid, a leading ∃-block that
// it must be satisfiable. A quantifier-free sentence defaults to validity
// (both tests coincide on constants).
func StripLeading(prefix []quantStep) (CheckMode, []string, []quantStep) {
	if len(prefix) == 0 {
		return CheckValidity, nil, nil
	}
	kind := prefix[0].all
	i := 0
	var stripped []string
	for i < len(prefix) && prefix[i].all == kind {
		stripped = append(stripped, prefix[i].v)
		i++
	}
	mode := CheckSatisfiability
	if kind {
		mode = CheckValidity
	}
	return mode, stripped, prefix[i:]
}

// PushForall distributes universal quantifiers over conjunctions (Rule 5)
// and mini-scopes quantifiers past subformulas that do not mention the bound
// variable. Existential quantifiers stay put (§4.3 keeps them pulled up so
// AppEx applies).
func PushForall(f Formula) Formula {
	switch g := f.(type) {
	case Quant:
		body := PushForall(g.F)
		if !g.All {
			return Quant{All: false, Vars: g.Vars, F: body}
		}
		out := body
		// Push one variable at a time, innermost first.
		for i := len(g.Vars) - 1; i >= 0; i-- {
			out = pushForallVar(g.Vars[i], out)
		}
		return out
	case And:
		return And{L: PushForall(g.L), R: PushForall(g.R)}
	case Or:
		return Or{L: PushForall(g.L), R: PushForall(g.R)}
	case Not:
		return Not{F: PushForall(g.F)}
	default:
		return f
	}
}

// pushForallVar pushes ∀x down into f as far as conjunctions allow.
func pushForallVar(x string, f Formula) Formula {
	if !usesVar(f, x) {
		return f
	}
	switch g := f.(type) {
	case And:
		return And{L: pushForallVar(x, g.L), R: pushForallVar(x, g.R)}
	case Or:
		// ∀ does not distribute over ∨ in general, but if only one side
		// mentions x it may be scoped there.
		lUses, rUses := usesVar(g.L, x), usesVar(g.R, x)
		switch {
		case lUses && !rUses:
			return Or{L: pushForallVar(x, g.L), R: g.R}
		case !lUses && rUses:
			return Or{L: g.L, R: pushForallVar(x, g.R)}
		}
	case Quant:
		if g.All {
			return Quant{All: true, Vars: append([]string{x}, g.Vars...), F: g.F}
		}
	}
	return Quant{All: true, Vars: []string{x}, F: f}
}

// Rewritten is the output of the full §4.4 pipeline for one sentence.
type Rewritten struct {
	// Mode says how Body decides the sentence.
	Mode CheckMode
	// Stripped lists the variables of the dropped leading quantifier block;
	// they occur free in Body. For CheckValidity these are the variables
	// whose bindings witness violations.
	Stripped []string
	// Body is the rewritten formula to evaluate.
	Body Formula
}

// RewriteOptions switches individual pipeline stages off for the ablation
// experiments (Table 1 and Figure 6 compare these strategies).
type RewriteOptions struct {
	// Prenex enables standardize-apart + prenexing + leading-quantifier
	// elimination. Without it the formula is evaluated as written and the
	// whole sentence must evaluate to True.
	Prenex bool
	// PushForall enables Rule 5 push-down of the remaining ∀ quantifiers.
	PushForall bool
}

// DefaultRewriteOptions enables the full pipeline the paper recommends.
func DefaultRewriteOptions() RewriteOptions {
	return RewriteOptions{Prenex: true, PushForall: true}
}

// Rewrite runs the pipeline on a sentence. The input must be closed
// (Analyze ensures this).
func Rewrite(f Formula, opts RewriteOptions) Rewritten {
	g := NNF(ElimImplies(f))
	if !opts.Prenex {
		if opts.PushForall {
			g = PushForall(g)
		}
		return Rewritten{Mode: CheckValidity, Body: g}
	}
	g = StandardizeApart(g)
	prefix, matrix := Prenex(g)
	mode, stripped, rest := StripLeading(prefix)
	body := BuildPrefix(rest, matrix)
	if opts.PushForall {
		body = PushForall(body)
	}
	return Rewritten{Mode: mode, Stripped: stripped, Body: body}
}
