package logic

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// quick_test.go: rewrite-pipeline invariants via testing/quick, on top of
// the brute-force model of rewrite_test.go.

type qFormula struct {
	f   Formula
	env *bruteEnv
}

func formulaConfig(seed int64) *quick.Config {
	rng := rand.New(rand.NewSource(seed))
	vars := []string{"x", "y", "z"}
	return &quick.Config{
		MaxCount: 150,
		Values: func(args []reflect.Value, r *rand.Rand) {
			for i := range args {
				args[i] = reflect.ValueOf(qFormula{
					f:   closeFormula(randFormula(rng, vars, 3)),
					env: randEnv(rng, 3),
				})
			}
		},
	}
}

// TestQuickRewriteSoundness: the full pipeline and each partial pipeline
// preserve sentence truth on random models.
func TestQuickRewriteSoundness(t *testing.T) {
	property := func(q qFormula) bool {
		want := q.env.sentenceTruth(q.f)
		for _, opts := range []RewriteOptions{
			{Prenex: true, PushForall: true},
			{Prenex: true},
			{PushForall: true},
			{},
		} {
			if q.env.rewrittenTruth(Rewrite(q.f, opts)) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, formulaConfig(51)); err != nil {
		t.Fatal(err)
	}
}

// TestQuickNNFInvolution: NNF is idempotent and preserves truth.
func TestQuickNNFInvolution(t *testing.T) {
	property := func(q qFormula) bool {
		g := NNF(ElimImplies(q.f))
		if NNF(g).String() != g.String() {
			return false
		}
		return q.env.sentenceTruth(g) == q.env.sentenceTruth(q.f)
	}
	if err := quick.Check(property, formulaConfig(53)); err != nil {
		t.Fatal(err)
	}
}

// TestQuickStandardizeApartPreservesTruth: renaming bound variables never
// changes the sentence.
func TestQuickStandardizeApartPreservesTruth(t *testing.T) {
	property := func(q qFormula) bool {
		g := StandardizeApart(q.f)
		return q.env.sentenceTruth(g) == q.env.sentenceTruth(q.f)
	}
	if err := quick.Check(property, formulaConfig(59)); err != nil {
		t.Fatal(err)
	}
}

// TestQuickParsePrintRoundTrip: printing and re-parsing is the identity on
// the tree (up to the printed form).
func TestQuickParsePrintRoundTrip(t *testing.T) {
	property := func(q qFormula) bool {
		printed := q.f.String()
		back, err := Parse(printed)
		if err != nil {
			return false
		}
		return back.String() == printed
	}
	if err := quick.Check(property, formulaConfig(61)); err != nil {
		t.Fatal(err)
	}
}
