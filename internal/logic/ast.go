// Package logic defines the first-order constraint language of the paper,
// its parser, the §4 rewrite rules (prenex normal form, leading-quantifier
// elimination, universal push-down, existential pull-up), and the evaluator
// that checks constraints against BDD logical indices with SQL fallback.
//
// A constraint is a first-order sentence over the tables of a catalog, e.g.
//
//	forall s, z: STUDENT(s, "CS", z) =>
//	    exists c: COURSE(c, "Programming") and TAKES(s, c)
//
// Variables range over the named value domains of the columns they occupy;
// the analyzer infers and checks these types. A constraint is violated when
// the sentence is false in the database.
package logic

import (
	"fmt"
	"strings"
)

// Term is a predicate argument or comparison operand.
type Term interface {
	isTerm()
	String() string
}

// Var is a first-order variable.
type Var struct{ Name string }

// Const is a quoted value constant.
type Const struct{ Value string }

func (Var) isTerm()   {}
func (Const) isTerm() {}

func (v Var) String() string   { return v.Name }
func (c Const) String() string { return quoteValue(c.Value) }

// quoteValue prints a constant in the constraint syntax: only backslash and
// double quote are escaped, matching exactly what the lexer unescapes (%q
// would emit \xNN escapes the lexer does not understand).
func quoteValue(v string) string {
	var sb strings.Builder
	sb.WriteByte('"')
	for i := 0; i < len(v); i++ {
		if v[i] == '\\' || v[i] == '"' {
			sb.WriteByte('\\')
		}
		sb.WriteByte(v[i])
	}
	sb.WriteByte('"')
	return sb.String()
}

// Formula is a node of the constraint syntax tree.
type Formula interface {
	isFormula()
	String() string
}

// Pred asserts that the argument tuple belongs to the named table
// (restricted to the table's indexed columns when evaluated against an
// index over a projection).
type Pred struct {
	Table string
	Args  []Term
}

// Eq compares two terms for equality. At least one side must be a variable.
type Eq struct{ L, R Term }

// Neq compares two terms for inequality. At least one side must be a variable.
type Neq struct{ L, R Term }

// In asserts membership of a term in an explicit value set.
type In struct {
	T      Term
	Values []string
}

// Not negates a formula.
type Not struct{ F Formula }

// And is binary conjunction.
type And struct{ L, R Formula }

// Or is binary disjunction.
type Or struct{ L, R Formula }

// Implies is material implication.
type Implies struct{ L, R Formula }

// Quant binds variables universally (All) or existentially.
type Quant struct {
	All  bool
	Vars []string
	F    Formula
}

// Truth is a boolean constant formula.
type Truth struct{ Value bool }

func (Pred) isFormula()    {}
func (Eq) isFormula()      {}
func (Neq) isFormula()     {}
func (In) isFormula()      {}
func (Not) isFormula()     {}
func (And) isFormula()     {}
func (Or) isFormula()      {}
func (Implies) isFormula() {}
func (Quant) isFormula()   {}
func (Truth) isFormula()   {}

func (p Pred) String() string {
	args := make([]string, len(p.Args))
	for i, a := range p.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", p.Table, strings.Join(args, ", "))
}

func (e Eq) String() string  { return fmt.Sprintf("%s = %s", e.L, e.R) }
func (e Neq) String() string { return fmt.Sprintf("%s != %s", e.L, e.R) }

func (e In) String() string {
	vals := make([]string, len(e.Values))
	for i, v := range e.Values {
		vals[i] = quoteValue(v)
	}
	return fmt.Sprintf("%s in {%s}", e.T, strings.Join(vals, ", "))
}

func (n Not) String() string { return fmt.Sprintf("not %s", paren(n.F)) }

func (a And) String() string { return fmt.Sprintf("%s and %s", paren(a.L), paren(a.R)) }
func (o Or) String() string  { return fmt.Sprintf("%s or %s", paren(o.L), paren(o.R)) }

func (i Implies) String() string { return fmt.Sprintf("%s => %s", paren(i.L), paren(i.R)) }

func (q Quant) String() string {
	kw := "exists"
	if q.All {
		kw = "forall"
	}
	return fmt.Sprintf("%s %s: %s", kw, strings.Join(q.Vars, ", "), q.F)
}

func (t Truth) String() string {
	if t.Value {
		return "true"
	}
	return "false"
}

// paren wraps composite subformulas so String output re-parses to the same
// tree.
func paren(f Formula) string {
	switch f.(type) {
	case Pred, Eq, Neq, In, Truth, Not:
		return f.String()
	default:
		return "(" + f.String() + ")"
	}
}

// Constraint is a named first-order sentence.
type Constraint struct {
	Name string
	F    Formula
}

func (c Constraint) String() string {
	return fmt.Sprintf("constraint %s: %s", c.Name, c.F)
}

// FreeVars returns the free variables of f in first-occurrence order.
func FreeVars(f Formula) []string {
	var out []string
	seen := map[string]bool{}
	bound := map[string]int{}
	var walkT func(Term)
	walkT = func(t Term) {
		if v, ok := t.(Var); ok {
			if bound[v.Name] == 0 && !seen[v.Name] {
				seen[v.Name] = true
				out = append(out, v.Name)
			}
		}
	}
	var walk func(Formula)
	walk = func(f Formula) {
		switch g := f.(type) {
		case Pred:
			for _, a := range g.Args {
				walkT(a)
			}
		case Eq:
			walkT(g.L)
			walkT(g.R)
		case Neq:
			walkT(g.L)
			walkT(g.R)
		case In:
			walkT(g.T)
		case Not:
			walk(g.F)
		case And:
			walk(g.L)
			walk(g.R)
		case Or:
			walk(g.L)
			walk(g.R)
		case Implies:
			walk(g.L)
			walk(g.R)
		case Quant:
			for _, v := range g.Vars {
				bound[v]++
			}
			walk(g.F)
			for _, v := range g.Vars {
				bound[v]--
			}
		case Truth:
		default:
			panic(fmt.Sprintf("logic: unknown formula type %T", f))
		}
	}
	walk(f)
	return out
}

// usesVar reports whether x occurs free in f.
func usesVar(f Formula, x string) bool {
	for _, v := range FreeVars(f) {
		if v == x {
			return true
		}
	}
	return false
}
