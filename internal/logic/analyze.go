package logic

import (
	"fmt"

	"repro/internal/relation"
)

// analyze.go performs name resolution and typing: every predicate is bound
// to a table (or an indexed projection of one), every variable is assigned
// the value domain of the columns it occupies, and free variables are closed
// under an outermost universal quantifier (a constraint file that writes
// "CUST(a, c) => ..." means "for all a, c: ...").

// Resolver maps a predicate name and arity to the table it denotes and the
// column positions its arguments bind. The plain catalog resolver binds
// table names with full schema arity; the checker additionally resolves
// index names to their indexed projections, so constraints can be written
// against an index over a subset of columns.
type Resolver interface {
	ResolvePred(name string, arity int) (*relation.Table, []int, error)
}

// CatalogResolver resolves predicate names as table names with full-schema
// arity.
type CatalogResolver struct {
	Catalog *relation.Catalog
}

// ResolvePred implements Resolver.
func (r CatalogResolver) ResolvePred(name string, arity int) (*relation.Table, []int, error) {
	t := r.Catalog.Table(name)
	if t == nil {
		return nil, nil, fmt.Errorf("logic: unknown table %q", name)
	}
	if arity != t.NumCols() {
		return nil, nil, fmt.Errorf("logic: %s has %d columns, predicate written with %d arguments",
			name, t.NumCols(), arity)
	}
	cols := make([]int, arity)
	for i := range cols {
		cols[i] = i
	}
	return t, cols, nil
}

// PredBinding is the resolved target of one predicate occurrence.
type PredBinding struct {
	Table *relation.Table
	Cols  []int // column positions bound by the arguments, in argument order
}

// Analysis is the output of Analyze.
type Analysis struct {
	// F is the closed, validated formula.
	F Formula
	// VarDomains maps every variable (by base name, before any
	// standardize-apart renaming) to its value domain.
	VarDomains map[string]*relation.Domain
	// Preds maps the name of each predicate occurring in F to its binding.
	// All occurrences of a name share one binding.
	Preds map[string]PredBinding
}

// Domain returns the value domain of a (possibly renamed) variable.
func (a *Analysis) Domain(varName string) *relation.Domain {
	return a.VarDomains[BaseName(varName)]
}

// BaseName strips the "$N" suffix StandardizeApart appends, recovering the
// analysis-time variable name.
func BaseName(v string) string {
	for i := 0; i < len(v); i++ {
		if v[i] == '$' {
			return v[:i]
		}
	}
	return v
}

// Analyze validates f against the resolver, infers variable domains and
// returns the universally closed formula. Analysis errors include unknown
// tables, arity mismatches, variables used at columns of different value
// domains, comparisons across domains, and variables that never occur in a
// predicate (and therefore have no finite range).
func Analyze(f Formula, res Resolver) (*Analysis, error) {
	an := &Analysis{
		VarDomains: make(map[string]*relation.Domain),
		Preds:      make(map[string]PredBinding),
	}
	assign := func(v string, d *relation.Domain, where string) error {
		if prev, ok := an.VarDomains[v]; ok {
			if prev != d {
				return fmt.Errorf("logic: variable %s used over domain %q and domain %q (%s)",
					v, prev.Name(), d.Name(), where)
			}
			return nil
		}
		an.VarDomains[v] = d
		return nil
	}
	var walk func(Formula) error
	walk = func(f Formula) error {
		switch g := f.(type) {
		case Pred:
			b, ok := an.Preds[g.Table]
			if !ok {
				table, cols, err := res.ResolvePred(g.Table, len(g.Args))
				if err != nil {
					return err
				}
				b = PredBinding{Table: table, Cols: cols}
				an.Preds[g.Table] = b
			}
			if len(g.Args) != len(b.Cols) {
				return fmt.Errorf("logic: predicate %s used with both %d and %d arguments",
					g.Table, len(b.Cols), len(g.Args))
			}
			for i, arg := range g.Args {
				if v, ok := arg.(Var); ok {
					d := b.Table.ColumnDomain(b.Cols[i])
					if err := assign(v.Name, d, fmt.Sprintf("argument %d of %s", i+1, g.Table)); err != nil {
						return err
					}
				}
			}
			return nil
		case Eq:
			return checkComparison(an, g.L, g.R, "=")
		case Neq:
			return checkComparison(an, g.L, g.R, "!=")
		case In:
			if _, ok := g.T.(Var); !ok {
				return fmt.Errorf("logic: 'in' requires a variable on the left")
			}
			return nil
		case Not:
			return walk(g.F)
		case And:
			if err := walk(g.L); err != nil {
				return err
			}
			return walk(g.R)
		case Or:
			if err := walk(g.L); err != nil {
				return err
			}
			return walk(g.R)
		case Implies:
			if err := walk(g.L); err != nil {
				return err
			}
			return walk(g.R)
		case Quant:
			return walk(g.F)
		case Truth:
			return nil
		default:
			return fmt.Errorf("logic: unknown formula type %T", f)
		}
	}
	// Two passes: predicates first so comparison checking sees all domains.
	if err := walk(f); err != nil {
		return nil, err
	}
	// Every variable must occur in some predicate: variables only used in
	// comparisons have no finite range and make the sentence domain
	// dependent.
	var checkRange func(Formula) error
	checkRange = func(f Formula) error {
		switch g := f.(type) {
		case Eq:
			return rangeCheckTerms(an, g.L, g.R, "=")
		case Neq:
			return rangeCheckTerms(an, g.L, g.R, "!=")
		case In:
			return rangeCheckTerms(an, g.T, nil, "in")
		case Not:
			return checkRange(g.F)
		case And:
			if err := checkRange(g.L); err != nil {
				return err
			}
			return checkRange(g.R)
		case Or:
			if err := checkRange(g.L); err != nil {
				return err
			}
			return checkRange(g.R)
		case Implies:
			if err := checkRange(g.L); err != nil {
				return err
			}
			return checkRange(g.R)
		case Quant:
			// A quantified variable that occurs in no predicate has no
			// finite range to quantify over.
			for _, v := range g.Vars {
				if _, bound := an.VarDomains[v]; !bound {
					return fmt.Errorf("logic: quantified variable %s never occurs in a predicate; its range is unbounded", v)
				}
			}
			return checkRange(g.F)
		default:
			return nil
		}
	}
	if err := checkRange(f); err != nil {
		return nil, err
	}
	closed := f
	if free := FreeVars(f); len(free) > 0 {
		closed = Quant{All: true, Vars: free, F: f}
	}
	an.F = closed
	return an, nil
}

func checkComparison(an *Analysis, l, r Term, op string) error {
	lv, lIsVar := l.(Var)
	rv, rIsVar := r.(Var)
	if !lIsVar && !rIsVar {
		return fmt.Errorf("logic: comparison %q %s %q has no variable side", l, op, r)
	}
	if lIsVar && rIsVar {
		ld, lok := an.VarDomains[lv.Name]
		rd, rok := an.VarDomains[rv.Name]
		if lok && rok && ld != rd {
			return fmt.Errorf("logic: comparing %s (domain %q) with %s (domain %q)",
				lv.Name, ld.Name(), rv.Name, rd.Name())
		}
	}
	return nil
}

func rangeCheckTerms(an *Analysis, l, r Term, op string) error {
	for _, t := range []Term{l, r} {
		if v, ok := t.(Var); ok {
			if _, bound := an.VarDomains[v.Name]; !bound {
				return fmt.Errorf("logic: variable %s occurs only in %q comparisons and never in a predicate; its range is unbounded", v.Name, op)
			}
		}
	}
	return nil
}
