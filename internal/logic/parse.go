package logic

import (
	"fmt"
	"strings"
	"unicode"
)

// parse.go is a hand-written recursive-descent parser for the constraint
// syntax:
//
//	formula  := ("forall" | "exists") ident ("," ident)* ":" formula
//	          | implication
//	impl     := disj ("=>" impl)?                (right associative)
//	disj     := conj ("or" conj)*
//	conj     := unary ("and" unary)*
//	unary    := "not" unary | atom
//	atom     := "(" formula ")" | "true" | "false"
//	          | IDENT "(" term ("," term)* ")"   (predicate)
//	          | term "=" term | term "!=" term | term "in" set
//	term     := IDENT | STRING | "_"
//	set      := "{" STRING ("," STRING)* "}"
//
// A "_" argument is an anonymous variable: each occurrence becomes a fresh
// existentially quantified variable scoped to its atom. Line comments start
// with "#".

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokPunct // ( ) { } , : = != => _
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case unicode.IsSpace(rune(c)):
			l.pos++
		case c == '"':
			start := l.pos
			l.pos++
			var sb strings.Builder
			for l.pos < len(l.src) && l.src[l.pos] != '"' {
				if l.src[l.pos] == '\\' && l.pos+1 < len(l.src) {
					l.pos++
				}
				sb.WriteByte(l.src[l.pos])
				l.pos++
			}
			if l.pos >= len(l.src) {
				return nil, fmt.Errorf("logic: unterminated string at offset %d", start)
			}
			l.pos++
			l.toks = append(l.toks, token{tokString, sb.String(), start})
		case isIdentStart(c) ||
			c == '_' && l.pos+1 < len(l.src) && isIdentPart(l.src[l.pos+1]):
			start := l.pos
			for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
				l.pos++
			}
			l.toks = append(l.toks, token{tokIdent, l.src[start:l.pos], start})
		default:
			start := l.pos
			two := ""
			if l.pos+1 < len(l.src) {
				two = l.src[l.pos : l.pos+2]
			}
			switch {
			case two == "=>" || two == "!=":
				l.toks = append(l.toks, token{tokPunct, two, start})
				l.pos += 2
			case strings.ContainsRune("(){},:=_.", rune(c)):
				l.toks = append(l.toks, token{tokPunct, string(c), start})
				l.pos++
			default:
				return nil, fmt.Errorf("logic: unexpected character %q at offset %d", c, l.pos)
			}
		}
	}
	l.toks = append(l.toks, token{tokEOF, "", l.pos})
	return l.toks, nil
}

// isIdentStart accepts letters. A leading '_' is handled in the lexer: a
// bare "_" is the anonymous-variable token, while "_name" lexes as an
// identifier (the parser generates "_anonN" names for wildcards, so
// "_"-prefixed identifiers are reserved and round-trip through String).
func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}

type parser struct {
	toks  []token
	i     int
	fresh int // anonymous variable counter
}

func (p *parser) peek() token   { return p.toks[p.i] }
func (p *parser) next() token   { t := p.toks[p.i]; p.i++; return t }
func (p *parser) atEOF() bool   { return p.peek().kind == tokEOF }
func (p *parser) save() int     { return p.i }
func (p *parser) restore(s int) { p.i = s }

func (p *parser) expect(text string) error {
	t := p.next()
	if t.kind == tokPunct && t.text == text || t.kind == tokIdent && t.text == text {
		return nil
	}
	return fmt.Errorf("logic: expected %q at offset %d, found %q", text, t.pos, t.text)
}

func (p *parser) isKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && t.text == kw
}

// Parse parses a single formula.
func Parse(src string) (Formula, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f, err := p.parseFormula()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		t := p.peek()
		return nil, fmt.Errorf("logic: trailing input %q at offset %d", t.text, t.pos)
	}
	return f, nil
}

// ParseConstraints parses a constraints file: a sequence of
// "constraint NAME: FORMULA" declarations terminated by "." or end of file,
// with "#" line comments.
func ParseConstraints(src string) ([]Constraint, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var out []Constraint
	for !p.atEOF() {
		if err := p.expect("constraint"); err != nil {
			return nil, err
		}
		name := p.next()
		if name.kind != tokIdent {
			return nil, fmt.Errorf("logic: expected constraint name at offset %d", name.pos)
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		f, err := p.parseFormula()
		if err != nil {
			return nil, fmt.Errorf("logic: in constraint %s: %w", name.text, err)
		}
		if p.peek().kind == tokPunct && p.peek().text == "." {
			p.next()
		}
		out = append(out, Constraint{Name: name.text, F: f})
	}
	return out, nil
}

func (p *parser) parseFormula() (Formula, error) {
	if p.isKeyword("forall") || p.isKeyword("exists") {
		all := p.next().text == "forall"
		var vars []string
		for {
			t := p.next()
			if t.kind != tokIdent {
				return nil, fmt.Errorf("logic: expected variable name at offset %d", t.pos)
			}
			vars = append(vars, t.text)
			if p.peek().kind == tokPunct && p.peek().text == "," {
				p.next()
				continue
			}
			break
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		body, err := p.parseFormula()
		if err != nil {
			return nil, err
		}
		return Quant{All: all, Vars: vars, F: body}, nil
	}
	return p.parseImplies()
}

func (p *parser) parseImplies() (Formula, error) {
	l, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokPunct && p.peek().text == "=>" {
		p.next()
		// Right-hand side may start a new quantifier scope.
		r, err := p.parseFormula()
		if err != nil {
			return nil, err
		}
		return Implies{L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseOr() (Formula, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("or") {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = Or{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Formula, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("and") {
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = And{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Formula, error) {
	if p.isKeyword("not") {
		p.next()
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not{F: f}, nil
	}
	if p.isKeyword("forall") || p.isKeyword("exists") {
		return p.parseFormula()
	}
	return p.parseAtom()
}

func (p *parser) parseAtom() (Formula, error) {
	t := p.peek()
	switch {
	case t.kind == tokPunct && t.text == "(":
		p.next()
		f, err := p.parseFormula()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return f, nil
	case t.kind == tokIdent && t.text == "true":
		p.next()
		return Truth{Value: true}, nil
	case t.kind == tokIdent && t.text == "false":
		p.next()
		return Truth{Value: false}, nil
	case t.kind == tokIdent:
		// Predicate if followed by "(", otherwise a term comparison.
		s := p.save()
		name := p.next()
		if p.peek().kind == tokPunct && p.peek().text == "(" {
			p.next()
			return p.parsePredTail(name.text)
		}
		p.restore(s)
		return p.parseComparison()
	default:
		return p.parseComparison()
	}
}

func (p *parser) parsePredTail(table string) (Formula, error) {
	var args []Term
	var anon []string
	for {
		t := p.next()
		switch {
		case t.kind == tokIdent:
			args = append(args, Var{Name: t.text})
		case t.kind == tokString:
			args = append(args, Const{Value: t.text})
		case t.kind == tokPunct && t.text == "_":
			p.fresh++
			name := fmt.Sprintf("_anon%d", p.fresh)
			anon = append(anon, name)
			args = append(args, Var{Name: name})
		default:
			return nil, fmt.Errorf("logic: expected predicate argument at offset %d, found %q", t.pos, t.text)
		}
		sep := p.next()
		if sep.kind == tokPunct && sep.text == "," {
			continue
		}
		if sep.kind == tokPunct && sep.text == ")" {
			break
		}
		return nil, fmt.Errorf("logic: expected ',' or ')' at offset %d, found %q", sep.pos, sep.text)
	}
	var f Formula = Pred{Table: table, Args: args}
	if len(anon) > 0 {
		f = Quant{All: false, Vars: anon, F: f}
	}
	return f, nil
}

func (p *parser) parseTerm() (Term, error) {
	t := p.next()
	switch {
	case t.kind == tokIdent:
		return Var{Name: t.text}, nil
	case t.kind == tokString:
		return Const{Value: t.text}, nil
	default:
		return nil, fmt.Errorf("logic: expected term at offset %d, found %q", t.pos, t.text)
	}
}

func (p *parser) parseComparison() (Formula, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	t := p.next()
	switch {
	case t.kind == tokPunct && t.text == "=":
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		return Eq{L: l, R: r}, nil
	case t.kind == tokPunct && t.text == "!=":
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		return Neq{L: l, R: r}, nil
	case t.kind == tokIdent && t.text == "in":
		if err := p.expect("{"); err != nil {
			return nil, err
		}
		var vals []string
		for {
			v := p.next()
			if v.kind != tokString {
				return nil, fmt.Errorf("logic: expected string in set at offset %d", v.pos)
			}
			vals = append(vals, v.text)
			sep := p.next()
			if sep.kind == tokPunct && sep.text == "," {
				continue
			}
			if sep.kind == tokPunct && sep.text == "}" {
				break
			}
			return nil, fmt.Errorf("logic: expected ',' or '}' at offset %d", sep.pos)
		}
		return In{T: l, Values: vals}, nil
	default:
		return nil, fmt.Errorf("logic: expected comparison operator at offset %d, found %q", t.pos, t.text)
	}
}
