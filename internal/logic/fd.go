package logic

// fd.go recognizes functional-dependency constraints, the class the paper
// singles out in Figure 5(b). An FD over a predicate P has the shape
//
//	forall x⃗, y, y': P(..., x⃗, ..., y, ...) and P(..., x⃗, ..., y', ...) => y = y'
//
// where the two predicate occurrences agree on the determinant variables x⃗
// position-wise, differ exactly in the dependent position, and every other
// position holds a single-occurrence (wildcard) variable. The evaluator
// checks recognized FDs by projection and model counting on the index BDD
// instead of evaluating the self-join — the "projection of suitable
// attributes ... and manipulation of the resulting BDDs" the paper
// describes.

// FD describes a recognized functional-dependency constraint.
type FD struct {
	// Pred is the predicate (table or index) name.
	Pred string
	// Arity is the number of predicate arguments.
	Arity int
	// Determinant and Dependent are argument positions: the FD is
	// Determinant → Dependent within the predicate's columns.
	Determinant []int
	Dependent   int
}

// DetectFD reports whether f (a raw, unrewritten constraint formula) is a
// functional-dependency constraint, and over which positions.
func DetectFD(f Formula) (FD, bool) {
	// Strip universal closures.
	body := f
	for {
		q, ok := body.(Quant)
		if !ok || !q.All {
			break
		}
		body = q.F
	}
	imp, ok := body.(Implies)
	if !ok {
		return FD{}, false
	}
	and, ok := imp.L.(And)
	if !ok {
		return FD{}, false
	}
	p1, ok1 := stripAnonExists(and.L)
	p2, ok2 := stripAnonExists(and.R)
	if !ok1 || !ok2 || p1.Table != p2.Table || len(p1.Args) != len(p2.Args) {
		return FD{}, false
	}
	eq, ok := imp.R.(Eq)
	if !ok {
		return FD{}, false
	}
	lv, ok1 := eq.L.(Var)
	rv, ok2 := eq.R.(Var)
	if !ok1 || !ok2 {
		return FD{}, false
	}
	counts := map[string]int{}
	countVars(f, counts)
	fd := FD{Pred: p1.Table, Arity: len(p1.Args), Dependent: -1}
	for i := range p1.Args {
		a1, ok1 := p1.Args[i].(Var)
		a2, ok2 := p2.Args[i].(Var)
		if !ok1 || !ok2 {
			return FD{}, false // constants would make this a conditional FD
		}
		switch {
		case a1.Name == a2.Name:
			// Shared determinant position — unless it is a pair of equal
			// single-use variables, which cannot happen since it appears in
			// both predicates (count ≥ 2).
			fd.Determinant = append(fd.Determinant, i)
		case a1.Name == lv.Name && a2.Name == rv.Name,
			a1.Name == rv.Name && a2.Name == lv.Name:
			if fd.Dependent != -1 {
				return FD{}, false // more than one dependent position
			}
			fd.Dependent = i
		case counts[a1.Name] == 1 && counts[a2.Name] == 1:
			// Both wildcards: position projected away.
		default:
			return FD{}, false
		}
	}
	if fd.Dependent == -1 || len(fd.Determinant) == 0 {
		return FD{}, false
	}
	return fd, true
}

// stripAnonExists unwraps the existential the parser adds around predicates
// with wildcard arguments.
func stripAnonExists(f Formula) (Pred, bool) {
	if q, ok := f.(Quant); ok && !q.All {
		f = q.F
	}
	p, ok := f.(Pred)
	return p, ok
}

func countVars(f Formula, counts map[string]int) {
	countTerm := func(t Term) {
		if v, ok := t.(Var); ok {
			counts[v.Name]++
		}
	}
	switch g := f.(type) {
	case Pred:
		for _, a := range g.Args {
			countTerm(a)
		}
	case Eq:
		countTerm(g.L)
		countTerm(g.R)
	case Neq:
		countTerm(g.L)
		countTerm(g.R)
	case In:
		countTerm(g.T)
	case Not:
		countVars(g.F, counts)
	case And:
		countVars(g.L, counts)
		countVars(g.R, counts)
	case Or:
		countVars(g.L, counts)
		countVars(g.R, counts)
	case Implies:
		countVars(g.L, counts)
		countVars(g.R, counts)
	case Quant:
		countVars(g.F, counts)
	}
}
