// Package datagen generates the paper's evaluation workloads: the
// product-structured relation families of §5.1 (1-PROD, 4-PROD, 8-PROD,
// RANDOM), a synthetic stand-in for the paper's 406,769-tuple US/Canada
// telephone customer dataset with matching schema and active-domain sizes,
// the membership-constraint relation of Figure 5(a), and the Q1–Q5
// constraint workloads of Table 1.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/relation"
)

// ProdSpec configures the k-PROD generator.
type ProdSpec struct {
	// Products is k: the relation is a union of k Cartesian products
	// (1 = the most structured family, 0 = fully random).
	Products int
	// Attrs is the number of attributes (the paper uses 5).
	Attrs int
	// Tuples is the approximate target cardinality (the paper uses 400,000).
	Tuples int
	// DomSize is the per-attribute active-domain size cap (the paper uses
	// "at most 100").
	DomSize int
}

// DefaultProdSpec returns the §5.1 configuration for a given k.
func DefaultProdSpec(k int) ProdSpec {
	return ProdSpec{Products: k, Attrs: 5, Tuples: 400000, DomSize: 100}
}

// KProd generates one relation of the k-PROD family into the catalog: a
// union of Products Cartesian products of smaller random relations over
// randomly partitioned, non-overlapping attribute sets. Products = 0
// produces a fully random relation of the same shape (the RANDOM family).
func KProd(cat *relation.Catalog, name string, spec ProdSpec, rng *rand.Rand) (*relation.Table, error) {
	if spec.Attrs < 2 {
		return nil, fmt.Errorf("datagen: need at least 2 attributes, got %d", spec.Attrs)
	}
	cols := make([]relation.Column, spec.Attrs)
	for i := range cols {
		cols[i] = relation.Column{
			Name:   fmt.Sprintf("a%d", i),
			Domain: fmt.Sprintf("%s.a%d", name, i),
		}
	}
	t, err := cat.CreateTable(name, cols)
	if err != nil {
		return nil, err
	}
	// Intern the full value range so the per-column dictionaries (and hence
	// BDD block widths) do not depend on which values happen to be drawn.
	for i := 0; i < spec.Attrs; i++ {
		d := cat.Domain(cols[i].Domain)
		for v := 0; v < spec.DomSize; v++ {
			d.Intern(valName(v))
		}
	}
	if spec.Products == 0 {
		for n := 0; n < spec.Tuples; n++ {
			row := make([]string, spec.Attrs)
			for i := range row {
				row[i] = valName(rng.Intn(spec.DomSize))
			}
			t.Insert(row...)
		}
		return t, nil
	}
	perProduct := spec.Tuples / spec.Products
	for p := 0; p < spec.Products; p++ {
		groups := partitionAttrs(spec.Attrs, rng)
		factors := make([][][]int, len(groups))
		// Choose factor cardinalities whose product approximates perProduct:
		// distribute the size geometrically over the groups.
		sizes := factorSizes(perProduct, groups, spec.DomSize, rng)
		for gi, group := range groups {
			factors[gi] = randomFactor(rng, len(group), sizes[gi], spec.DomSize)
		}
		// Enumerate the product.
		emitProduct(t, groups, factors, spec.Attrs)
	}
	return t, nil
}

func valName(v int) string { return fmt.Sprintf("v%03d", v) }

// partitionAttrs splits 0..n-1 into 2 or 3 random non-overlapping groups.
func partitionAttrs(n int, rng *rand.Rand) [][]int {
	perm := rng.Perm(n)
	k := 2
	if n >= 4 && rng.Intn(2) == 0 {
		k = 3
	}
	// Random cut points leaving every group nonempty.
	cuts := map[int]bool{}
	for len(cuts) < k-1 {
		cuts[1+rng.Intn(n-1)] = true
	}
	var groups [][]int
	start := 0
	for i := 1; i <= n; i++ {
		if i == n || cuts[i] {
			groups = append(groups, perm[start:i])
			start = i
		}
	}
	return groups
}

// factorSizes picks per-group factor cardinalities with product ≈ target,
// respecting each group's maximum possible cardinality.
func factorSizes(target int, groups [][]int, domSize int, rng *rand.Rand) []int {
	sizes := make([]int, len(groups))
	remaining := float64(target)
	maxCard := func(i int) float64 {
		return math.Pow(float64(domSize), float64(len(groups[i])))
	}
	for i := range groups {
		left := len(groups) - i - 1
		// Geometric split of what remains.
		s := math.Pow(remaining, 1/float64(left+1))
		if m := maxCard(i); s > m {
			s = m
		}
		if s < 1 {
			s = 1
		}
		sizes[i] = int(s)
		remaining /= float64(sizes[i])
	}
	// Rounding down every factor can undershoot the target badly; top up
	// greedily until the product is within 10% or every factor is at its
	// cap.
	product := func() float64 {
		p := 1.0
		for _, s := range sizes {
			p *= float64(s)
		}
		return p
	}
	for product() < 0.9*float64(target) {
		grew := false
		for i := range sizes {
			if float64(sizes[i]+1) <= maxCard(i) && product() < 0.9*float64(target) {
				sizes[i]++
				grew = true
			}
		}
		if !grew {
			break
		}
	}
	_ = rng
	return sizes
}

// randomFactor generates `count` distinct random tuples over `width`
// attributes with the given domain size.
func randomFactor(rng *rand.Rand, width, count, domSize int) [][]int {
	seen := make(map[string]bool, count)
	var out [][]int
	key := make([]byte, width)
	for len(out) < count {
		row := make([]int, width)
		for i := range row {
			row[i] = rng.Intn(domSize)
			key[i] = byte(row[i])
		}
		k := string(key)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, row)
	}
	return out
}

// emitProduct inserts the Cartesian product of the factors into t.
func emitProduct(t *relation.Table, groups [][]int, factors [][][]int, attrs int) {
	row := make([]int32, attrs)
	var rec func(gi int)
	rec = func(gi int) {
		if gi == len(groups) {
			t.InsertCodes(row)
			return
		}
		for _, tuple := range factors[gi] {
			for j, attr := range groups[gi] {
				// Value codes equal value indices because the dictionaries
				// were interned in order.
				row[attr] = int32(tuple[j])
			}
			rec(gi + 1)
		}
	}
	rec(0)
}
