package datagen_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/logic"
	"repro/internal/relation"
)

func TestKProdShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range []int{0, 1, 4, 8} {
		cat := relation.NewCatalog()
		tbl, err := datagen.KProd(cat, "R", datagen.ProdSpec{
			Products: k, Attrs: 5, Tuples: 20000, DomSize: 50,
		}, rng)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if tbl.NumCols() != 5 {
			t.Fatalf("k=%d: %d columns", k, tbl.NumCols())
		}
		n := tbl.Len()
		if n < 10000 || n > 40000 {
			t.Errorf("k=%d: cardinality %d too far from target 20000", k, n)
		}
		for c := 0; c < 5; c++ {
			if ad := tbl.ActiveDomainSize(c); ad > 50 {
				t.Errorf("k=%d col %d: active domain %d exceeds cap", k, c, ad)
			}
			// The dictionary is fully interned regardless of the sample.
			if tbl.ColumnDomain(c).Size() != 50 {
				t.Errorf("k=%d col %d: dictionary size %d, want 50", k, c, tbl.ColumnDomain(c).Size())
			}
		}
	}
}

func TestKProdStructureIsDetectable(t *testing.T) {
	// A 1-PROD relation should have far smaller BDDs under a good ordering
	// than a RANDOM one of the same cardinality — indirectly verified via
	// the entropy structure here (the ordering tests verify the BDD side).
	rng := rand.New(rand.NewSource(2))
	cat := relation.NewCatalog()
	prod, err := datagen.KProd(cat, "P", datagen.ProdSpec{Products: 1, Attrs: 4, Tuples: 5000, DomSize: 20}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// In a product, some pair of attributes is independent: joint active
	// count equals the product of the marginals for attributes in different
	// factors.
	foundIndependent := false
	for i := 0; i < 4 && !foundIndependent; i++ {
		for j := i + 1; j < 4; j++ {
			pairs := map[[2]int32]bool{}
			for r := 0; r < prod.Len(); r++ {
				row := prod.Row(r)
				pairs[[2]int32{row[i], row[j]}] = true
			}
			if len(pairs) == prod.ActiveDomainSize(i)*prod.ActiveDomainSize(j) {
				foundIndependent = true
				break
			}
		}
	}
	if !foundIndependent {
		t.Error("1-PROD relation has no independent attribute pair; product structure missing")
	}
}

func TestCustomersShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cat := relation.NewCatalog()
	data, err := datagen.Customers(cat, "CUST", datagen.CustomerSpec{Tuples: 30000}, rng)
	if err != nil {
		t.Fatal(err)
	}
	tbl := data.Table
	if tbl.Len() != 30000 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	// Dictionary sizes match the paper's active domains exactly.
	want := []int{datagen.NumAreacodes, datagen.NumNumbers, datagen.NumCities, datagen.NumStates, datagen.NumZipcodes}
	for c, w := range want {
		if got := tbl.ColumnDomain(c).Size(); got != w {
			t.Errorf("column %d: dict size %d, want %d", c, got, w)
		}
	}
	// Consistency of the generated data (no noise): city determines state.
	cityState := map[int32]int32{}
	for r := 0; r < tbl.Len(); r++ {
		row := tbl.Row(r)
		if prev, ok := cityState[row[2]]; ok && prev != row[3] {
			t.Fatal("city → state violated in noise-free data")
		}
		cityState[row[2]] = row[3]
	}
	// Areacode ties to state per the ground truth.
	for r := 0; r < tbl.Len(); r++ {
		row := tbl.Row(r)
		if data.AreaState[row[0]] != int(row[3]) {
			t.Fatal("areacode/state inconsistent with ground truth")
		}
	}
}

func TestCustomersNoisePlantsViolations(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cat := relation.NewCatalog()
	data, err := datagen.Customers(cat, "CUST", datagen.CustomerSpec{Tuples: 20000, NoiseRate: 0.05}, rng)
	if err != nil {
		t.Fatal(err)
	}
	bad := 0
	for r := 0; r < data.Table.Len(); r++ {
		row := data.Table.Row(r)
		if data.AreaState[row[0]] != int(row[3]) {
			bad++
		}
	}
	if bad == 0 {
		t.Fatal("noise planted no areacode/state violations")
	}
	if bad > 4000 {
		t.Fatalf("too many violations: %d", bad)
	}
}

func TestMembershipConstraintsTable(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cat := relation.NewCatalog()
	data, err := datagen.Customers(cat, "CUST", datagen.CustomerSpec{Tuples: 5000}, rng)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := datagen.MembershipConstraints(cat, "CONSTRAINTS", data, 1000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if cons.Len() != 1000 {
		t.Fatalf("Len = %d", cons.Len())
	}
	// Shares the customer domains so joins are well typed.
	if cons.ColumnDomain(0) != data.Table.ColumnDomain(2) {
		t.Fatal("city domain not shared")
	}
	if cons.ColumnDomain(1) != data.Table.ColumnDomain(0) {
		t.Fatal("areacode domain not shared")
	}
}

func TestTable1WorkloadRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	w, err := datagen.NewTable1Workload(datagen.Table1Spec{
		MainTuples: 5000, RefTuples: 1000, DomSize: 30,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Constraints) != 5 {
		t.Fatalf("%d constraints", len(w.Constraints))
	}
	chk := core.New(w.Catalog, core.Options{})
	if _, err := chk.BuildIndex("REL", "REL", nil, core.OrderProbConverge); err != nil {
		t.Fatal(err)
	}
	if _, err := chk.BuildIndex("REF", "REF", nil, core.OrderProbConverge); err != nil {
		t.Fatal(err)
	}
	for _, ct := range w.Constraints {
		res := chk.CheckOne(ct)
		if res.Err != nil {
			t.Fatalf("%s: %v", ct.Name, res.Err)
		}
		if res.FellBack {
			t.Fatalf("%s: unexpected fallback: %v", ct.Name, res.FallbackReason)
		}
		// Cross-check against SQL.
		rows, err := chk.ViolatingRows(ct)
		if err != nil {
			t.Fatalf("%s: sql: %v", ct.Name, err)
		}
		if res.Violated != (rows.Len() > 0) {
			t.Fatalf("%s: BDD violated=%v but SQL found %d violations", ct.Name, res.Violated, rows.Len())
		}
	}
	_ = logic.Constraint{}
}
