package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/relation"
)

// customers.go synthesizes the paper's real dataset: "a database of 406,769
// customers from US and Canada having the schema (areacode, number, city,
// state, zipcode); the size of the active domain for each attribute is
// (281, 889, 10894, 50, 17557)". The generator reproduces the schema, the
// active-domain sizes and the functional structure the paper's constraints
// exploit (city determines state, areacode is tied to a state, zipcodes
// belong to cities), with a configurable noise rate that plants constraint
// violations.

// Active-domain sizes of the paper's customer dataset.
const (
	NumAreacodes = 281
	NumNumbers   = 889
	NumCities    = 10894
	NumStates    = 50
	NumZipcodes  = 17557
	NumCustomers = 406769
)

// CustomerSpec configures the generator.
type CustomerSpec struct {
	// Tuples is the relation size (NumCustomers by default).
	Tuples int
	// NoiseRate is the fraction of tuples whose state or areacode is
	// scrambled, planting violations of the natural constraints. Zero
	// produces a consistent database.
	NoiseRate float64
}

// CustomerData is the generated dataset plus the ground-truth mappings the
// constraint workloads are derived from.
type CustomerData struct {
	Table *relation.Table
	// CityState maps each city index to its state index.
	CityState []int
	// AreaState maps each areacode index to its state index.
	AreaState []int
	// CityZips maps each city index to its zipcode indices.
	CityZips [][]int
	// StateAreas maps each state index to its areacode indices.
	StateAreas [][]int
}

// Value renderers for the customer schema.
func AreacodeName(i int) string { return fmt.Sprintf("%03d", 200+i) }
func NumberName(i int) string   { return fmt.Sprintf("555%04d", i) }
func CityName(i int) string     { return fmt.Sprintf("city%05d", i) }
func StateName(i int) string    { return fmt.Sprintf("S%02d", i) }
func ZipcodeName(i int) string  { return fmt.Sprintf("Z%05d", i) }

// Customers generates the synthetic customer table into the catalog under
// the given name. All attribute values are interned up front so the active
// domains (and hence the 29- and 35-variable encodings of the paper's two
// indices) are independent of the sample.
func Customers(cat *relation.Catalog, name string, spec CustomerSpec, rng *rand.Rand) (*CustomerData, error) {
	if spec.Tuples == 0 {
		spec.Tuples = NumCustomers
	}
	t, err := cat.CreateTable(name, []relation.Column{
		{Name: "areacode", Domain: name + ".areacode"},
		{Name: "number", Domain: name + ".number"},
		{Name: "city", Domain: name + ".city"},
		{Name: "state", Domain: name + ".state"},
		{Name: "zipcode", Domain: name + ".zipcode"},
	})
	if err != nil {
		return nil, err
	}
	intern := func(dom string, n int, render func(int) string) {
		d := cat.Domain(name + "." + dom)
		for i := 0; i < n; i++ {
			d.Intern(render(i))
		}
	}
	intern("areacode", NumAreacodes, AreacodeName)
	intern("number", NumNumbers, NumberName)
	intern("city", NumCities, CityName)
	intern("state", NumStates, StateName)
	intern("zipcode", NumZipcodes, ZipcodeName)

	data := &CustomerData{
		Table:      t,
		CityState:  make([]int, NumCities),
		AreaState:  make([]int, NumAreacodes),
		CityZips:   make([][]int, NumCities),
		StateAreas: make([][]int, NumStates),
	}
	// Areacodes per state: every state gets at least one; the rest follow a
	// skewed assignment (populous states own more codes).
	for a := 0; a < NumAreacodes; a++ {
		s := a % NumStates
		if a >= NumStates {
			s = skewedState(rng)
		}
		data.AreaState[a] = s
		data.StateAreas[s] = append(data.StateAreas[s], a)
	}
	// Cities per state, zipcodes per city.
	for c := 0; c < NumCities; c++ {
		data.CityState[c] = skewedState(rng)
	}
	for z := 0; z < NumZipcodes; z++ {
		c := z % NumCities // every city has at least one zipcode
		if z >= NumCities {
			c = rng.Intn(NumCities)
		}
		data.CityZips[c] = append(data.CityZips[c], z)
	}
	// Customers: pick a city with skew, derive everything else.
	row := make([]int32, 5)
	for n := 0; n < spec.Tuples; n++ {
		city := skewedCity(rng)
		state := data.CityState[city]
		areas := data.StateAreas[state]
		area := areas[rng.Intn(len(areas))]
		zips := data.CityZips[city]
		zip := zips[rng.Intn(len(zips))]
		number := rng.Intn(NumNumbers)
		if spec.NoiseRate > 0 && rng.Float64() < spec.NoiseRate {
			// Scramble either the state or the areacode.
			if rng.Intn(2) == 0 {
				state = rng.Intn(NumStates)
			} else {
				area = rng.Intn(NumAreacodes)
			}
		}
		row[0] = int32(area)
		row[1] = int32(number)
		row[2] = int32(city)
		row[3] = int32(state)
		row[4] = int32(zip)
		t.InsertCodes(row)
	}
	return data, nil
}

// skewedState draws a state index with a mildly Zipfian skew.
func skewedState(rng *rand.Rand) int {
	// Quadratic skew towards low indices.
	u := rng.Float64()
	return int(u * u * NumStates)
}

// skewedCity draws a city index with a strong skew (big cities dominate).
func skewedCity(rng *rand.Rand) int {
	u := rng.Float64()
	c := int(u * u * u * NumCities)
	if c >= NumCities {
		c = NumCities - 1
	}
	return c
}

// MembershipConstraints builds the Figure 5(a) "Constraints" relation: a
// table with schema (city, areacode) of allowed pairs, derived from the
// ground truth. violatedFraction of the pairs are replaced with pairs
// inconsistent with the data, so a checker scanning the base table against
// this relation finds violations.
func MembershipConstraints(cat *relation.Catalog, name string, data *CustomerData, n int, rng *rand.Rand) (*relation.Table, error) {
	custName := data.Table.Name()
	t, err := cat.CreateTable(name, []relation.Column{
		{Name: "city", Domain: custName + ".city"},
		{Name: "areacode", Domain: custName + ".areacode"},
	})
	if err != nil {
		return nil, err
	}
	row := make([]int32, 2)
	for i := 0; i < n; i++ {
		city := skewedCity(rng)
		state := data.CityState[city]
		areas := data.StateAreas[state]
		row[0] = int32(city)
		row[1] = int32(areas[rng.Intn(len(areas))])
		t.InsertCodes(row)
	}
	return t, nil
}
