package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/logic"
	"repro/internal/relation"
)

// queries.go builds the Table 1 workload: a synthetic database and the five
// constraint-violation queries Q1–Q5. The paper omits their definitions
// ("detailed description omitted due to space limitations"), describing them
// only as "testing for different types of constraint violations"; we use one
// query per constraint class exercised elsewhere in the paper: value
// membership, set implication, functional dependency, inclusion/join
// existence, and a composite with disjunction and nested quantifiers.

// Table1Workload is the generated database and query set.
type Table1Workload struct {
	Catalog     *relation.Catalog
	Main        *relation.Table // REL(a0..a4), a 4-PROD relation
	Ref         *relation.Table // REF(a0, b), a reference/detail relation
	Constraints []logic.Constraint
}

// Table1Spec configures the workload size.
type Table1Spec struct {
	MainTuples int // default 100,000
	RefTuples  int // default 20,000
	DomSize    int // default 100
}

// NewTable1Workload generates the database and the five queries.
func NewTable1Workload(spec Table1Spec, rng *rand.Rand) (*Table1Workload, error) {
	if spec.MainTuples == 0 {
		spec.MainTuples = 100000
	}
	if spec.RefTuples == 0 {
		spec.RefTuples = 20000
	}
	if spec.DomSize == 0 {
		spec.DomSize = 100
	}
	cat := relation.NewCatalog()
	main, err := KProd(cat, "REL", ProdSpec{
		Products: 4, Attrs: 5, Tuples: spec.MainTuples, DomSize: spec.DomSize,
	}, rng)
	if err != nil {
		return nil, err
	}
	// REF(a0, b): a0 shares REL's first attribute domain, so inclusion
	// constraints between the tables are well typed.
	ref, err := cat.CreateTable("REF", []relation.Column{
		{Name: "a0", Domain: "REL.a0"},
		{Name: "b", Domain: "REF.b"},
	})
	if err != nil {
		return nil, err
	}
	bDom := cat.Domain("REF.b")
	for v := 0; v < spec.DomSize; v++ {
		bDom.Intern(valName(v))
	}
	for i := 0; i < spec.RefTuples; i++ {
		ref.Insert(valName(rng.Intn(spec.DomSize)), valName(rng.Intn(spec.DomSize)))
	}

	set := func(n int) string {
		if n > spec.DomSize {
			n = spec.DomSize
		}
		// Sample n distinct values via a partial shuffle (no rejection
		// loop, deterministic draw count).
		perm := rng.Perm(spec.DomSize)[:n]
		s := ""
		for _, v := range perm {
			if s != "" {
				s += ", "
			}
			s += fmt.Sprintf("%q", valName(v))
		}
		return "{" + s + "}"
	}
	queries := []struct{ name, src string }{
		{"Q1_membership", fmt.Sprintf(
			`forall x, y: REL(x, y, _, _, _) and x = %q => y in %s`,
			valName(rng.Intn(spec.DomSize)), set(20))},
		{"Q2_implication", fmt.Sprintf(
			`forall x, w: REL(x, _, _, w, _) and x in %s => w in %s`,
			set(10), set(30))},
		{"Q3_fd", `forall x, y, z: REL(x, y, _, _, _) and REL(x, z, _, _, _) => y = z`},
		{"Q4_inclusion", `forall x: REL(x, _, _, _, _) => exists b: REF(x, b)`},
		{"Q5_composite", fmt.Sprintf(
			`forall x, z: REL(x, _, z, _, _) => (z in %s or (exists b: REF(x, b) and b in %s))`,
			set(25), set(40))},
	}
	w := &Table1Workload{Catalog: cat, Main: main, Ref: ref}
	for _, q := range queries {
		f, err := logic.Parse(q.src)
		if err != nil {
			return nil, fmt.Errorf("datagen: parsing %s: %w", q.name, err)
		}
		w.Constraints = append(w.Constraints, logic.Constraint{Name: q.name, F: f})
	}
	return w, nil
}
