package obs

// registry.go collects named metrics and renders them in the Prometheus
// text exposition format (version 0.0.4): "# HELP"/"# TYPE" headers per
// family, one sample line per series, histograms as cumulative le-buckets
// with _sum and _count. Registration happens once at construction time
// behind a mutex; the hot path only touches the returned Counter/Histogram
// atomics.

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Kind is a Prometheus metric type.
type Kind string

// Metric kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// series is one labeled instance of a family. Exactly one of the value
// fields is set, matching the family's kind.
type series struct {
	labels  string // rendered label pairs, e.g. `endpoint="check"`; may be empty
	counter *Counter
	fn      func() float64
	hist    *Histogram
}

// family is one metric name with its help text, type and series.
type family struct {
	name string
	help string
	kind Kind
	rows []series
}

// Registry holds metric families and renders them for scraping.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // sorted family names
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// metricNameOK matches the Prometheus metric-name grammar.
func metricNameOK(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (r *Registry) register(name, labels, help string, kind Kind, s series) {
	if !metricNameOK(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.families[name] = f
		r.names = append(r.names, name)
		sort.Strings(r.names)
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, kind))
	}
	for _, row := range f.rows {
		if row.labels == labels {
			panic(fmt.Sprintf("obs: duplicate series %s{%s}", name, labels))
		}
	}
	s.labels = labels
	f.rows = append(f.rows, s)
}

// Counter registers and returns an owned counter series. labels holds
// rendered Prometheus label pairs (`endpoint="check"`), or "" for none.
// Registering the same (name, labels) twice panics — series are created
// once, at construction time.
func (r *Registry) Counter(name, labels, help string) *Counter {
	c := &Counter{}
	r.register(name, labels, help, KindCounter, series{counter: c})
	return c
}

// CounterFunc registers a counter series whose value is read from fn at
// scrape time — for counters that already live elsewhere as atomics.
func (r *Registry) CounterFunc(name, labels, help string, fn func() uint64) {
	r.register(name, labels, help, KindCounter, series{fn: func() float64 { return float64(fn()) }})
}

// GaugeFunc registers a gauge series whose value is read from fn at scrape
// time.
func (r *Registry) GaugeFunc(name, labels, help string, fn func() float64) {
	r.register(name, labels, help, KindGauge, series{fn: fn})
}

// Histogram registers and returns an owned histogram series. Durations are
// exposed in seconds, per Prometheus convention.
func (r *Registry) Histogram(name, labels, help string) *Histogram {
	h := &Histogram{}
	r.register(name, labels, help, KindHistogram, series{hist: h})
	return h
}

// WritePrometheus renders every registered family in the text exposition
// format, families in name order and series in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	for _, name := range r.names {
		f := r.families[name]
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, row := range f.rows {
			switch {
			case row.counter != nil:
				writeSample(&b, f.name, row.labels, float64(row.counter.Load()))
			case row.fn != nil:
				writeSample(&b, f.name, row.labels, row.fn())
			case row.hist != nil:
				writeHistogram(&b, f.name, row.labels, row.hist.Snapshot())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeSample emits `name{labels} value`.
func writeSample(b *strings.Builder, name, labels string, v float64) {
	b.WriteString(name)
	if labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(v))
	b.WriteByte('\n')
}

// writeHistogram emits the cumulative le-bucket series plus _sum and _count.
// Empty leading and trailing buckets are elided (the cumulative counts stay
// correct); the mandatory +Inf bucket always appears.
func writeHistogram(b *strings.Builder, name, labels string, s HistogramSnapshot) {
	first, last := NumBuckets, -1
	for i, c := range s.Buckets {
		if c > 0 {
			if first == NumBuckets {
				first = i
			}
			last = i
		}
	}
	var cum uint64
	bucketName := name + "_bucket"
	for i := first; i <= last; i++ {
		cum += s.Buckets[i]
		le := strconv.FormatFloat(float64(BucketBound(i))/1e9, 'g', -1, 64)
		writeSample(b, bucketName, joinLabels(labels, `le="`+le+`"`), float64(cum))
	}
	writeSample(b, bucketName, joinLabels(labels, `le="+Inf"`), float64(cum))
	writeSample(b, name+"_sum", labels, s.Sum.Seconds())
	writeSample(b, name+"_count", labels, float64(cum))
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
