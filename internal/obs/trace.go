package obs

// trace.go is the request-scoped tracing facility: a Trace collects named
// spans (queue wait, BDD evaluation, SQL fallback, ...) as a request moves
// from handler goroutine to kernel worker and back, each span optionally
// annotated with the BDD-kernel counter delta it caused. A nil *Trace is the
// disabled state: every method is a nil-safe no-op, so call sites record
// unconditionally and pay one nil check when tracing is off.

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/bdd"
)

// Span is one recorded stage of a traced request.
type Span struct {
	// Name identifies the stage ("queue_wait", "eval:nj_codes", ...).
	Name string
	// Start is the stage's offset from the start of the trace.
	Start time.Duration
	// Duration is the stage's wall-clock time.
	Duration time.Duration
	// Kernel is the BDD-kernel counter movement attributed to the stage;
	// nil for stages that touch no kernel.
	Kernel *bdd.Delta
}

// Trace accumulates the spans of one request. Create one with NewTrace;
// leave the pointer nil to disable tracing. Spans may be recorded from
// multiple goroutines (the handler and the worker serving its job): the
// internal mutex orders them, and the request's sequential handoff keeps
// the span list coherent.
type Trace struct {
	t0    time.Time
	mu    sync.Mutex
	spans []Span
}

// NewTrace starts a trace; its zero point is the moment of creation.
func NewTrace() *Trace { return &Trace{t0: time.Now()} }

// Begin returns the current time, for a later Span/SpanKernel call. It is
// nil-safe and returns the zero time on a disabled trace, letting call
// sites skip the clock read entirely when neither tracing nor slow-logging
// is armed.
func (t *Trace) Begin() time.Time {
	if t == nil {
		return time.Time{}
	}
	return time.Now()
}

// Span records a stage that started at start and ends now, with no kernel
// attribution. No-op on a nil trace.
func (t *Trace) Span(name string, start time.Time) {
	if t == nil {
		return
	}
	t.add(Span{Name: name, Start: start.Sub(t.t0), Duration: time.Since(start)})
}

// SpanKernel records a stage that started at start and ends now, annotated
// with the kernel counter delta it caused. A zero delta is recorded without
// annotation. No-op on a nil trace.
func (t *Trace) SpanKernel(name string, start time.Time, d bdd.Delta) {
	if t == nil {
		return
	}
	sp := Span{Name: name, Start: start.Sub(t.t0), Duration: time.Since(start)}
	if !d.IsZero() {
		sp.Kernel = &d
	}
	t.add(sp)
}

// Record adds a stage with an explicitly measured duration, for call sites
// that already timed the work (e.g. splitting a result's SQL share out of
// its total) and must not read the clock again. A nil kd leaves the span
// unannotated; a zero delta behind kd is likewise dropped. No-op on a nil
// trace.
func (t *Trace) Record(name string, start time.Time, d time.Duration, kd *bdd.Delta) {
	if t == nil {
		return
	}
	sp := Span{Name: name, Start: start.Sub(t.t0), Duration: d}
	if kd != nil && !kd.IsZero() {
		cp := *kd
		sp.Kernel = &cp
	}
	t.add(sp)
}

func (t *Trace) add(sp Span) {
	if sp.Start < 0 {
		sp.Start = 0
	}
	if sp.Duration < 0 {
		sp.Duration = 0
	}
	t.mu.Lock()
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans in recording order. Nil-safe.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Total returns the time elapsed since the trace started. Nil-safe.
func (t *Trace) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.t0)
}

// Summary renders the spans on one line for the slow-request log:
// "queue_wait=1.2ms eval:nj_codes=25ms[+1204n]". Nil-safe.
func (t *Trace) Summary() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	for i, sp := range t.spans {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%v", sp.Name, sp.Duration.Round(time.Microsecond))
		if sp.Kernel != nil {
			fmt.Fprintf(&b, "[+%dn]", sp.Kernel.NodesAllocated)
		}
	}
	return b.String()
}
