// Package obs is the stdlib-only observability layer of the long-lived
// service: lock-cheap counters and log2-bucket latency histograms with
// percentile extraction, request-scoped traces whose spans carry BDD-kernel
// counter deltas (internal/bdd.Delta), and a registry that renders
// everything in the Prometheus text exposition format for /metricsz.
//
// Everything here is safe for concurrent use and designed to sit on hot
// paths: recording a histogram observation is two atomic adds and one atomic
// increment, a counter bump is one atomic add, and a disabled trace (a nil
// *Trace) costs a single nil check per call site. Reads (percentiles, the
// exposition writer) take point-in-time snapshots of the atomics; under
// concurrent writes a snapshot may be torn by a few in-flight observations,
// which monitoring tolerates by construction.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the number of log2 histogram buckets. Bucket i counts
// observations v (in nanoseconds) with v <= 2^i and v > 2^(i-1); bucket 0
// counts v <= 1. 63 buckets cover every positive int64 duration, so there is
// no overflow bucket to saturate.
const NumBuckets = 63

// Histogram is a fixed-shape log2-bucket latency histogram. The zero value
// is ready for use. Buckets are powers of two in nanoseconds, which keeps
// Observe branch-free (one bits.Len64) and bounds the relative error of
// percentile extraction by 2x — ample for the "where did the time go"
// question the histograms exist to answer.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64 // nanoseconds
	buckets [NumBuckets]atomic.Uint64
}

// bucketOf maps a duration to its bucket index: the smallest i with
// ns <= 2^i, i.e. bits.Len64(ns-1) clamped to the bucket range.
func bucketOf(d time.Duration) int {
	ns := d.Nanoseconds()
	if ns <= 1 {
		return 0
	}
	i := bits.Len64(uint64(ns - 1))
	if i >= NumBuckets {
		return NumBuckets - 1
	}
	return i
}

// BucketBound returns the inclusive upper bound of bucket i, 2^i
// nanoseconds.
func BucketBound(i int) time.Duration { return time.Duration(1) << uint(i) }

// Observe records one duration. Negative durations are clamped to zero
// (clocks can step; a poisoned histogram is worse than a flattened sample).
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketOf(d)].Add(1)
	h.sum.Add(d.Nanoseconds())
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// HistogramSnapshot is a point-in-time copy of a histogram's state, for
// consistent multi-quantile extraction.
type HistogramSnapshot struct {
	Count   uint64
	Sum     time.Duration
	Buckets [NumBuckets]uint64
}

// Snapshot copies the histogram's counters. The bucket array is read without
// a global lock, so a snapshot taken under concurrent writes may be off by
// the few observations in flight.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = time.Duration(h.sum.Load())
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) as the upper bound of the
// bucket holding the rank-q observation: an over-estimate by at most 2x.
// It returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	return h.Snapshot().Quantile(q)
}

// Quantile extracts a quantile from the snapshot; see Histogram.Quantile.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	// Rank against the bucket total, not Count: under concurrent writes the
	// two can disagree by in-flight observations, and walking with the
	// bucket total keeps the rank reachable.
	var total uint64
	for _, c := range s.Buckets {
		total += c
	}
	if total == 0 {
		return 0
	}
	if math.IsNaN(q) {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Buckets {
		cum += c
		if cum >= rank {
			return BucketBound(i)
		}
	}
	return BucketBound(NumBuckets - 1)
}

// Counter is a monotonically increasing atomic counter. The zero value is
// ready for use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }
