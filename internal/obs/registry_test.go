package obs

import (
	"strings"
	"testing"
	"time"
)

// TestRegistryGolden locks the exposition byte-for-byte on a small registry:
// family ordering, label rendering, cumulative buckets with empty edges
// elided, and seconds-valued le bounds.
func TestRegistryGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", `endpoint="check"`, "Requests.")
	c.Add(3)
	r.GaugeFunc("test_depth", "", "Depth.", func() float64 { return 2.5 })
	h := r.Histogram("test_latency_seconds", "", "Latency.")
	h.Observe(100 * time.Nanosecond)
	h.Observe(100 * time.Nanosecond)
	h.Observe(30 * time.Microsecond)

	want := `# HELP test_depth Depth.
# TYPE test_depth gauge
test_depth 2.5
# HELP test_latency_seconds Latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="1.28e-07"} 2
test_latency_seconds_bucket{le="2.56e-07"} 2
test_latency_seconds_bucket{le="5.12e-07"} 2
test_latency_seconds_bucket{le="1.024e-06"} 2
test_latency_seconds_bucket{le="2.048e-06"} 2
test_latency_seconds_bucket{le="4.096e-06"} 2
test_latency_seconds_bucket{le="8.192e-06"} 2
test_latency_seconds_bucket{le="1.6384e-05"} 2
test_latency_seconds_bucket{le="3.2768e-05"} 3
test_latency_seconds_bucket{le="+Inf"} 3
test_latency_seconds_sum 3.02e-05
test_latency_seconds_count 3
# HELP test_requests_total Requests.
# TYPE test_requests_total counter
test_requests_total{endpoint="check"} 3
`
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != want {
		t.Errorf("exposition mismatch\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
	if err := ValidateExposition(strings.NewReader(b.String())); err != nil {
		t.Errorf("golden exposition fails its own validator: %v", err)
	}
}

func TestRegistryEmptyHistogram(t *testing.T) {
	r := NewRegistry()
	r.Histogram("test_latency_seconds", "", "Latency.")
	r.Counter("test_total", "", "T.").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `test_latency_seconds_bucket{le="+Inf"} 0`) {
		t.Errorf("empty histogram must still emit its +Inf bucket:\n%s", out)
	}
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Errorf("empty-histogram exposition invalid: %v", err)
	}
}

func TestRegistryPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("dup_total", `a="1"`, "")
	mustPanic("duplicate series", func() { r.Counter("dup_total", `a="1"`, "") })
	mustPanic("kind mismatch", func() { r.Histogram("dup_total", `a="2"`, "") })
	mustPanic("bad name", func() { r.Counter("1bad", "", "") })
	mustPanic("empty name", func() { r.Counter("", "", "") })
}

func TestValidateExpositionAccepts(t *testing.T) {
	good := []string{
		"a_total 1\n",
		"# HELP a_total help text\n# TYPE a_total counter\na_total{x=\"y\"} 5 1700000000\n",
		"a 1\nb NaN\nc +Inf\nd -Inf\ne 1.5e-3\n",
		"a{l=\"esc\\\\ape\\\"d\\n\"} 1\n",
		"# just a comment\na 1\n",
	}
	for _, in := range good {
		if err := ValidateExposition(strings.NewReader(in)); err != nil {
			t.Errorf("valid exposition rejected: %v\ninput: %q", err, in)
		}
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	bad := map[string]string{
		"empty":               "",
		"comments only":       "# HELP a_total x\n# TYPE a_total counter\n",
		"bad metric name":     "1bad 1\n",
		"bad value":           "a one\n",
		"bad timestamp":       "a 1 soon\n",
		"missing value":       "a\n",
		"extra field":         "a 1 2 3\n",
		"unterminated labels": "a{x=\"y\" 1\n",
		"bad label name":      "a{1x=\"y\"} 1\n",
		"unquoted value":      "a{x=y} 1\n",
		"bad escape":          "a{x=\"\\q\"} 1\n",
		"duplicate series":    "a{x=\"y\"} 1\na{x=\"y\"} 2\n",
		"duplicate TYPE":      "# TYPE a counter\n# TYPE a counter\na 1\n",
		"duplicate HELP":      "# HELP a x\n# HELP a y\na 1\n",
		"TYPE after samples":  "a 1\n# TYPE a counter\n",
		"unknown type":        "# TYPE a enum\na 1\n",
		"malformed TYPE":      "# TYPE a\na 1\n",
		"bucket without le":   "# TYPE h histogram\nh_bucket 1\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
		"missing +Inf": "# TYPE h histogram\n" +
			"h_bucket{le=\"0.1\"} 1\nh_sum 1\nh_count 1\n",
		"le out of order": "# TYPE h histogram\n" +
			"h_bucket{le=\"0.2\"} 1\nh_bucket{le=\"0.1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_count 2\n",
		"not cumulative": "# TYPE h histogram\n" +
			"h_bucket{le=\"0.1\"} 5\nh_bucket{le=\"0.2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_count 5\n",
		"count mismatch": "# TYPE h histogram\n" +
			"h_bucket{le=\"0.1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 3\n",
	}
	for name, in := range bad {
		if err := ValidateExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: invalid exposition accepted\ninput: %q", name, in)
		}
	}
}

// TestValidateHistogramSeparatesSeries checks that histogram invariants are
// tracked per label set, not smeared across one family.
func TestValidateHistogramSeparatesSeries(t *testing.T) {
	in := "# TYPE h histogram\n" +
		"h_bucket{x=\"a\",le=\"0.2\"} 5\n" +
		"h_bucket{x=\"a\",le=\"+Inf\"} 5\n" +
		"h_count{x=\"a\"} 5\n" +
		"h_bucket{x=\"b\",le=\"0.1\"} 1\n" + // smaller le and count than series a
		"h_bucket{x=\"b\",le=\"+Inf\"} 1\n" +
		"h_count{x=\"b\"} 1\n"
	if err := ValidateExposition(strings.NewReader(in)); err != nil {
		t.Errorf("per-series histogram state leaked across label sets: %v", err)
	}
}
