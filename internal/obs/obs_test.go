package obs

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bdd"
)

func TestBucketOf(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{-5, 0},
		{0, 0},
		{1, 0},
		{2, 1},
		{3, 2},
		{4, 2},
		{5, 3},
		{100, 7},
		{128, 7},
		{129, 8},
		{30 * time.Microsecond, 15},
		{1 << 62, 62},
		{1<<63 - 1, 62}, // beyond the last bound, clamped to the top bucket
	}
	for _, c := range cases {
		d := c.d
		if d < 0 {
			d = 0 // Observe clamps; bucketOf is only called on clamped values
		}
		if got := bucketOf(d); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestBucketBoundCoversBucket(t *testing.T) {
	for i := 0; i < NumBuckets-1; i++ {
		b := BucketBound(i)
		if bucketOf(b) != i {
			t.Errorf("upper bound %v of bucket %d maps to bucket %d", b, i, bucketOf(b))
		}
		if bucketOf(b+1) != i+1 {
			t.Errorf("%v (just past bucket %d) maps to bucket %d, want %d", b+1, i, bucketOf(b+1), i+1)
		}
	}
}

func TestHistogramObserve(t *testing.T) {
	var h Histogram
	h.Observe(100 * time.Nanosecond)
	h.Observe(100 * time.Nanosecond)
	h.Observe(30 * time.Microsecond)
	h.Observe(-time.Second) // clamped to 0, lands in bucket 0
	if got := h.Count(); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
	if got, want := h.Sum(), 30200*time.Nanosecond; got != want {
		t.Fatalf("Sum = %v, want %v (negative observation must add 0)", got, want)
	}
	s := h.Snapshot()
	if s.Buckets[0] != 1 || s.Buckets[7] != 2 || s.Buckets[15] != 1 {
		t.Fatalf("unexpected bucket layout: %v", s.Buckets)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram Quantile = %v, want 0", got)
	}
	for i := 0; i < 90; i++ {
		h.Observe(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	// 1µs lands in bucket 10 (bound 1.024µs), 1ms in bucket 20 (bound
	// ~1.049ms). Rank 50 and 90 sit in the first group, 95 and 99 in the
	// second.
	lo, hi := BucketBound(10), BucketBound(20)
	if got := h.Quantile(0.5); got != lo {
		t.Errorf("p50 = %v, want %v", got, lo)
	}
	if got := h.Quantile(0.9); got != lo {
		t.Errorf("p90 = %v, want %v", got, lo)
	}
	if got := h.Quantile(0.95); got != hi {
		t.Errorf("p95 = %v, want %v", got, hi)
	}
	if got := h.Quantile(0.99); got != hi {
		t.Errorf("p99 = %v, want %v", got, hi)
	}
	if got := h.Quantile(0); got != lo {
		t.Errorf("p0 = %v, want %v (rank floors at 1)", got, lo)
	}
	if got := h.Quantile(2); got != hi {
		t.Errorf("q=2 = %v, want clamp to max %v", got, hi)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const goroutines, perG = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(time.Duration(g*1000+i) * time.Nanosecond)
				// Concurrent reads must not race with writes.
				_ = h.Quantile(0.99)
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("Count = %d, want %d", got, goroutines*perG)
	}
	s := h.Snapshot()
	var total uint64
	for _, c := range s.Buckets {
		total += c
	}
	if total != goroutines*perG {
		t.Fatalf("bucket total = %d, want %d", total, goroutines*perG)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("Load = %d, want 42", got)
	}
}

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	if !tr.Begin().IsZero() {
		t.Error("nil Begin should return the zero time")
	}
	tr.Span("a", time.Now())
	tr.SpanKernel("b", time.Now(), bdd.Delta{NodesAllocated: 1})
	tr.Record("c", time.Now(), time.Second, &bdd.Delta{Ops: 1})
	if got := tr.Spans(); got != nil {
		t.Errorf("nil Spans = %v, want nil", got)
	}
	if got := tr.Total(); got != 0 {
		t.Errorf("nil Total = %v, want 0", got)
	}
	if got := tr.Summary(); got != "" {
		t.Errorf("nil Summary = %q, want empty", got)
	}
}

func TestTraceSpans(t *testing.T) {
	tr := NewTrace()
	start := tr.Begin()
	if start.IsZero() {
		t.Fatal("Begin on a live trace returned the zero time")
	}
	tr.Span("queue_wait", start)
	tr.SpanKernel("eval:x", tr.Begin(), bdd.Delta{NodesAllocated: 7, Ops: 3})
	tr.SpanKernel("eval:zero", tr.Begin(), bdd.Delta{})
	d := bdd.Delta{CacheHits: 5}
	tr.Record("sql:x", tr.Begin(), 123*time.Microsecond, &d)
	d.CacheHits = 99 // Record must copy, not alias
	tr.Record("witness_enum", tr.Begin(), time.Millisecond, nil)

	spans := tr.Spans()
	if len(spans) != 5 {
		t.Fatalf("got %d spans, want 5: %+v", len(spans), spans)
	}
	byName := map[string]Span{}
	for _, sp := range spans {
		if sp.Start < 0 || sp.Duration < 0 {
			t.Errorf("span %s has negative start/duration: %+v", sp.Name, sp)
		}
		byName[sp.Name] = sp
	}
	if k := byName["eval:x"].Kernel; k == nil || k.NodesAllocated != 7 || k.Ops != 3 {
		t.Errorf("eval:x kernel = %+v, want {NodesAllocated:7 Ops:3}", k)
	}
	if byName["eval:zero"].Kernel != nil {
		t.Error("zero kernel delta should be recorded without annotation")
	}
	if k := byName["sql:x"].Kernel; k == nil || k.CacheHits != 5 {
		t.Errorf("sql:x kernel = %+v, want the copied {CacheHits:5}", k)
	}
	if got := byName["sql:x"].Duration; got != 123*time.Microsecond {
		t.Errorf("sql:x duration = %v, want the explicit 123µs", got)
	}
	if byName["witness_enum"].Kernel != nil {
		t.Error("nil kernel pointer should leave the span unannotated")
	}
	if tr.Total() <= 0 {
		t.Error("Total should be positive on a live trace")
	}
	sum := tr.Summary()
	for _, want := range []string{"queue_wait=", "eval:x=", "[+7n]", "sql:x="} {
		if !strings.Contains(sum, want) {
			t.Errorf("Summary %q missing %q", sum, want)
		}
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Span("s", tr.Begin())
				_ = tr.Spans()
				_ = tr.Summary()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 2000 {
		t.Fatalf("got %d spans, want 2000", got)
	}
}
