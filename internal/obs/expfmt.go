package obs

// expfmt.go validates the Prometheus text exposition format (version 0.0.4)
// — the consumer-side counterpart of registry.go's writer. The CI smoke step
// pipes a live /metricsz scrape through cmd/promcheck, which calls
// ValidateExposition; the service tests run the same validator over the
// handler's output, so writer and validator cannot drift apart silently.

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ValidateExposition checks that r holds well-formed Prometheus text
// exposition output and returns the first violation found. Beyond the line
// grammar it enforces the metadata and histogram invariants a scraper
// relies on: at most one TYPE/HELP per family, TYPE before the family's
// samples, no duplicate series, histogram buckets cumulative and capped by
// a +Inf bucket that matches _count.
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	typed := map[string]string{}     // family -> kind
	helped := map[string]bool{}      // family -> HELP seen
	sampled := map[string]bool{}     // family -> samples seen
	seen := map[string]bool{}        // name{labels} -> present
	hists := map[string]*histState{} // family{base labels} -> state
	lineNo := 0
	samples := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := validateComment(line, typed, helped, sampled); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		samples++
		key := name + "{" + labels + "}"
		if seen[key] {
			return fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		}
		seen[key] = true
		fam := familyOf(name, typed)
		sampled[fam] = true
		if kind, ok := typed[fam]; ok && kind == "histogram" {
			if err := trackHistogram(name, labels, value, fam, hists); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("no samples in exposition")
	}
	for key, h := range hists {
		if !h.infSeen {
			return fmt.Errorf("histogram %s: missing +Inf bucket", key)
		}
		if h.hasCnt && h.count != h.inf {
			return fmt.Errorf("histogram %s: _count %g != +Inf bucket %g", key, h.count, h.inf)
		}
	}
	return nil
}

func validateComment(line string, typed map[string]string, helped, sampled map[string]bool) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, kind := fields[2], fields[3]
		if !metricNameOK(name) {
			return fmt.Errorf("TYPE for invalid metric name %q", name)
		}
		switch kind {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q for %s", kind, name)
		}
		if _, dup := typed[name]; dup {
			return fmt.Errorf("duplicate TYPE for %s", name)
		}
		if sampled[name] {
			return fmt.Errorf("TYPE for %s after its samples", name)
		}
		typed[name] = kind
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("malformed HELP line %q", line)
		}
		name := fields[2]
		if !metricNameOK(name) {
			return fmt.Errorf("HELP for invalid metric name %q", name)
		}
		if helped[name] {
			return fmt.Errorf("duplicate HELP for %s", name)
		}
		helped[name] = true
	}
	return nil
}

// parseSample splits `name{labels} value [timestamp]` and validates each
// part, returning the name, the raw label block (without braces) and the
// parsed value.
func parseSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return "", "", 0, fmt.Errorf("malformed sample %q", line)
	} else {
		name, rest = rest[:i], rest[i:]
	}
	if !metricNameOK(name) {
		return "", "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return "", "", 0, fmt.Errorf("unterminated label block in %q", line)
		}
		labels = rest[1:end]
		rest = rest[end+1:]
		if err := validateLabels(labels); err != nil {
			return "", "", 0, fmt.Errorf("%w in %q", err, line)
		}
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", "", 0, fmt.Errorf("want value [timestamp] after name in %q", line)
	}
	value, err = parseValue(fields[0])
	if err != nil {
		return "", "", 0, fmt.Errorf("bad value %q in %q", fields[0], line)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", "", 0, fmt.Errorf("bad timestamp %q in %q", fields[1], line)
		}
	}
	return name, labels, value, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// validateLabels checks a label block: comma-separated name="value" pairs
// with valid label names and properly escaped values.
func validateLabels(block string) error {
	if block == "" {
		return nil
	}
	rest := block
	for rest != "" {
		eq := strings.Index(rest, "=")
		if eq < 0 {
			return fmt.Errorf("label pair without '=' (%q)", rest)
		}
		lname := rest[:eq]
		if !labelNameOK(lname) {
			return fmt.Errorf("invalid label name %q", lname)
		}
		rest = rest[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return fmt.Errorf("unquoted value for label %q", lname)
		}
		rest = rest[1:]
		// Scan to the closing quote, honoring escapes.
		i := 0
		for {
			if i >= len(rest) {
				return fmt.Errorf("unterminated value for label %q", lname)
			}
			if rest[i] == '\\' {
				if i+1 >= len(rest) {
					return fmt.Errorf("dangling escape in value for label %q", lname)
				}
				switch rest[i+1] {
				case '\\', '"', 'n':
				default:
					return fmt.Errorf("bad escape \\%c in value for label %q", rest[i+1], lname)
				}
				i += 2
				continue
			}
			if rest[i] == '"' {
				break
			}
			i++
		}
		rest = rest[i+1:]
		if rest == "" {
			break
		}
		if !strings.HasPrefix(rest, ",") {
			return fmt.Errorf("expected ',' between label pairs (%q)", rest)
		}
		rest = rest[1:]
	}
	return nil
}

func labelNameOK(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// familyOf strips the _bucket/_sum/_count suffix when the base name is a
// declared histogram, so samples attach to the right family.
func familyOf(name string, typed map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if typed[base] == "histogram" {
				return base
			}
		}
	}
	return name
}

// histState tracks one histogram series' invariants across its samples.
type histState struct {
	prevLe  float64
	prevCum float64
	infSeen bool
	inf     float64
	count   float64
	hasCnt  bool
}

// trackHistogram accumulates per-series histogram invariants: buckets must
// carry an le label, appear in increasing le order with non-decreasing
// cumulative counts, and end in a +Inf bucket matching _count.
func trackHistogram(name, labels string, value float64, fam string, hists map[string]*histState) error {
	base, le, isBucket := splitLe(labels)
	key := fam + "{" + base + "}"
	h := hists[key]
	if h == nil {
		h = &histState{prevLe: math.Inf(-1)}
		hists[key] = h
	}
	switch {
	case strings.HasSuffix(name, "_bucket"):
		if !isBucket {
			return fmt.Errorf("histogram bucket %s missing le label", name)
		}
		leV, err := parseValue(le)
		if err != nil {
			return fmt.Errorf("bad le %q on %s", le, name)
		}
		if leV <= h.prevLe {
			return fmt.Errorf("histogram %s: le %q out of order", key, le)
		}
		if value < h.prevCum {
			return fmt.Errorf("histogram %s: bucket counts not cumulative at le=%q", key, le)
		}
		h.prevLe, h.prevCum = leV, value
		if math.IsInf(leV, 1) {
			h.infSeen, h.inf = true, value
		}
	case strings.HasSuffix(name, "_count"):
		h.count, h.hasCnt = value, true
	}
	return nil
}

// splitLe removes the le pair from a bucket's label block, returning the
// base labels, the le value and whether an le pair was present.
func splitLe(labels string) (base, le string, ok bool) {
	parts := strings.Split(labels, ",")
	kept := parts[:0]
	for _, p := range parts {
		if v, found := strings.CutPrefix(p, `le="`); found {
			le = strings.TrimSuffix(v, `"`)
			ok = true
			continue
		}
		kept = append(kept, p)
	}
	return strings.Join(kept, ","), le, ok
}
