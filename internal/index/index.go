// Package index builds and maintains the paper's logical indices: BDD
// representations of (projections of) relational tables, constructed under a
// configurable node budget and maintained incrementally as the base table
// changes (§2.3, §5.2).
//
// All indices of a Store share one BDD kernel, so common subfunctions are
// physically shared ("shared node implementation", §2.2), and one node
// budget covers the sum of all indices plus any intermediate results of
// constraint evaluation.
package index

import (
	"fmt"
	"sort"

	"repro/internal/bdd"
	"repro/internal/fdd"
	"repro/internal/relation"
)

// Options configures a Store.
type Options struct {
	// NodeBudget bounds the number of live BDD nodes across all indices and
	// all in-flight constraint evaluations. Zero means unlimited. The paper
	// uses 10^6 nodes (§5.2, "Evaluating BDD overhead").
	NodeBudget int
	// CacheSize is the per-operation cache size of the kernel (entries).
	CacheSize int
}

// Store owns the shared kernel and the logical indices built in it.
type Store struct {
	kernel  *bdd.Kernel
	space   *fdd.Space
	indices map[string]*Index
}

// NewStore creates an empty index store.
func NewStore(opts Options) *Store {
	k := bdd.New(bdd.Config{Vars: 0, NodeBudget: opts.NodeBudget, CacheSize: opts.CacheSize})
	return &Store{
		kernel:  k,
		space:   fdd.NewSpace(k),
		indices: make(map[string]*Index),
	}
}

// Kernel exposes the shared kernel (for query evaluation and metrics).
func (s *Store) Kernel() *bdd.Kernel { return s.kernel }

// Space exposes the shared finite-domain space (query evaluation allocates
// its variable blocks here).
func (s *Store) Space() *fdd.Space { return s.space }

// Index returns the index named name, or nil.
func (s *Store) Index(name string) *Index { return s.indices[name] }

// Names lists the store's index names in sorted order, for stats reporting.
func (s *Store) Names() []string {
	out := make([]string, 0, len(s.indices))
	for name := range s.indices {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Index is the BDD representation of the projection of a table onto a set
// of indexed columns, i.e. the characteristic function of that projection.
type Index struct {
	store *Store
	table *relation.Table
	name  string
	cols  []int         // indexed columns, in table schema order
	doms  []*fdd.Domain // parallel to cols
	order []int         // positions into cols, the block layout order used
	root  bdd.Ref
}

// Build constructs an index named name over the given columns of t. order
// is a permutation of 0..len(cols)-1 choosing the variable-block layout
// (produced by package ordering); nil means schema order. Build returns
// bdd.ErrBudget (wrapped) when the index does not fit the node budget; the
// paper's strategy then leaves the table to SQL processing.
func (s *Store) Build(name string, t *relation.Table, cols []int, order []int) (*Index, error) {
	if _, dup := s.indices[name]; dup {
		return nil, fmt.Errorf("index: %q already exists", name)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("index: %q has no columns", name)
	}
	if order == nil {
		order = make([]int, len(cols))
		for i := range order {
			order[i] = i
		}
	}
	if len(order) != len(cols) {
		return nil, fmt.Errorf("index: %q: order has %d entries for %d columns", name, len(order), len(cols))
	}
	ix := &Index{store: s, table: t, name: name, cols: cols, order: order}
	// Allocate blocks in layout order; record them in schema order.
	ix.doms = make([]*fdd.Domain, len(cols))
	seen := make([]bool, len(cols))
	for _, pos := range order {
		if pos < 0 || pos >= len(cols) || seen[pos] {
			return nil, fmt.Errorf("index: %q: order is not a permutation", name)
		}
		seen[pos] = true
		col := cols[pos]
		dom := t.ColumnDomain(col)
		ix.doms[pos] = s.space.NewDomain(
			fmt.Sprintf("%s.%s", name, t.ColumnNames()[col]), dom.Size())
	}
	rows := make([][]int, t.Len())
	for i := 0; i < t.Len(); i++ {
		row := t.Row(i)
		proj := make([]int, len(cols))
		for j, c := range cols {
			proj[j] = int(row[c])
		}
		rows[i] = proj
	}
	root, err := fdd.Relation(ix.doms, rows)
	if err != nil {
		s.kernel.ClearErr()
		s.kernel.GC(s.protectedRoots()...)
		return nil, fmt.Errorf("index: building %q: %w", name, err)
	}
	ix.root = root
	s.kernel.Protect(root)
	s.indices[name] = ix
	return ix, nil
}

// Adopt registers an index whose BDD was built elsewhere: the replication
// path copies a primary index root into a replica kernel with bdd.CopyTo
// and adopts it here, together with blocks reproduced through
// fdd.Space.AdoptDomain. doms is parallel to cols (schema order), order is
// the block layout permutation exactly as in Build, and root must be a Ref
// of this store's kernel. The root is protected like a built index's.
func (s *Store) Adopt(name string, t *relation.Table, cols []int, order []int, doms []*fdd.Domain, root bdd.Ref) (*Index, error) {
	if _, dup := s.indices[name]; dup {
		return nil, fmt.Errorf("index: %q already exists", name)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("index: %q has no columns", name)
	}
	if len(doms) != len(cols) {
		return nil, fmt.Errorf("index: %q: %d domains for %d columns", name, len(doms), len(cols))
	}
	if order == nil {
		order = make([]int, len(cols))
		for i := range order {
			order[i] = i
		}
	}
	if len(order) != len(cols) {
		return nil, fmt.Errorf("index: %q: order has %d entries for %d columns", name, len(order), len(cols))
	}
	if root == bdd.Invalid {
		return nil, fmt.Errorf("index: %q: adopting an Invalid root", name)
	}
	ix := &Index{store: s, table: t, name: name, cols: cols, doms: doms, order: order, root: root}
	s.kernel.Protect(root)
	s.indices[name] = ix
	return ix, nil
}

func (s *Store) protectedRoots() []bdd.Ref {
	var roots []bdd.Ref
	for _, ix := range s.indices {
		roots = append(roots, ix.root)
	}
	return roots
}

// Drop removes the index and releases its nodes for collection. The block
// variables remain allocated (kernel variables cannot be removed), which is
// harmless.
func (s *Store) Drop(name string) {
	ix, ok := s.indices[name]
	if !ok {
		return
	}
	s.kernel.Unprotect(ix.root)
	delete(s.indices, name)
}

// Name returns the index name.
func (ix *Index) Name() string { return ix.name }

// Table returns the indexed table.
func (ix *Index) Table() *relation.Table { return ix.table }

// Columns returns the indexed column positions in schema order.
func (ix *Index) Columns() []int { return ix.cols }

// Order returns the block layout permutation chosen at build time
// (positions into Columns()). The returned slice must not be modified.
func (ix *Index) Order() []int { return ix.order }

// Root returns the BDD of the indexed projection.
func (ix *Index) Root() bdd.Ref { return ix.root }

// Domain returns the finite-domain block encoding indexed column col (a
// table schema position), or nil if col is not indexed.
func (ix *Index) Domain(col int) *fdd.Domain {
	for j, c := range ix.cols {
		if c == col {
			return ix.doms[j]
		}
	}
	return nil
}

// Domains returns the blocks of all indexed columns in schema order.
func (ix *Index) Domains() []*fdd.Domain { return ix.doms }

// NodeCount returns the size of the index in BDD nodes.
func (ix *Index) NodeCount() int { return ix.store.kernel.NodeCount(ix.root) }

func (ix *Index) project(row []int32) ([]int, error) {
	proj := make([]int, len(ix.cols))
	for j, c := range ix.cols {
		v := int(row[c])
		if v >= 1<<ix.doms[j].Bits() {
			return nil, fmt.Errorf("index: %q: value code %d overflows the %d-bit block of column %d; rebuild the index",
				ix.name, v, ix.doms[j].Bits(), c)
		}
		proj[j] = v
	}
	return proj, nil
}

// Insert adds the encoded table row to the index. Codes that no longer fit
// the blocks allocated at build time (the column dictionary grew past a
// power of two) are reported as an error; the caller must rebuild.
func (ix *Index) Insert(row []int32) error {
	proj, err := ix.project(row)
	if err != nil {
		return err
	}
	k := ix.store.kernel
	newRoot := k.Or(ix.root, fdd.Minterm(ix.doms, proj))
	if newRoot == bdd.Invalid {
		err := k.Err()
		k.ClearErr()
		return fmt.Errorf("index: inserting into %q: %w", ix.name, err)
	}
	k.Protect(newRoot)
	k.Unprotect(ix.root)
	ix.root = newRoot
	return nil
}

// Delete removes the encoded row from the index. Because the index has set
// semantics while tables are bags, stillPresent must be true when another
// table row with the same indexed projection remains; the deletion is then
// a no-op on the index.
func (ix *Index) Delete(row []int32, stillPresent bool) error {
	if stillPresent {
		return nil
	}
	proj, err := ix.project(row)
	if err != nil {
		return err
	}
	k := ix.store.kernel
	newRoot := k.Diff(ix.root, fdd.Minterm(ix.doms, proj))
	if newRoot == bdd.Invalid {
		err := k.Err()
		k.ClearErr()
		return fmt.Errorf("index: deleting from %q: %w", ix.name, err)
	}
	k.Protect(newRoot)
	k.Unprotect(ix.root)
	ix.root = newRoot
	return nil
}

// Contains reports whether the indexed projection of the encoded row is in
// the index — the O(bits) membership test of §2.2.
func (ix *Index) Contains(row []int32) bool {
	proj, err := ix.project(row)
	if err != nil {
		return false
	}
	k := ix.store.kernel
	f := ix.root
	lits := fdd.Tuple(ix.doms, proj)
	byVar := make(map[int]bool, len(lits))
	for _, l := range lits {
		byVar[l.Var] = l.Value
	}
	for !k.IsTerminal(f) {
		v, ok := byVar[k.VarOf(f)]
		if !ok {
			// Variable of another block: both branches agree on this
			// projection only if the node does not actually test an
			// indexed bit, which cannot happen for an index root.
			panic("index: root depends on a foreign variable")
		}
		if v {
			f = k.High(f)
		} else {
			f = k.Low(f)
		}
	}
	return f == bdd.True
}
