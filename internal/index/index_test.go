package index_test

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/bdd"
	"repro/internal/index"
	"repro/internal/relation"
)

func smallTable(t *testing.T) (*relation.Catalog, *relation.Table) {
	t.Helper()
	cat := relation.NewCatalog()
	tbl, err := cat.CreateTable("T", []relation.Column{
		{Name: "a"}, {Name: "b"}, {Name: "c"},
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl.Insert("a1", "b1", "c1")
	tbl.Insert("a1", "b2", "c2")
	tbl.Insert("a2", "b1", "c2")
	return cat, tbl
}

func TestBuildAndContains(t *testing.T) {
	_, tbl := smallTable(t)
	store := index.NewStore(index.Options{})
	ix, err := store.Build("T", tbl, []int{0, 1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tbl.Len(); i++ {
		if !ix.Contains(tbl.Row(i)) {
			t.Fatalf("row %d missing from index", i)
		}
	}
	// A tuple not in the table.
	if ix.Contains([]int32{1, 1, 0}) { // (a2, b2, c1)
		t.Fatal("index contains a non-tuple")
	}
	if got := store.Kernel().SatCount(ix.Root()); got != 3 {
		t.Fatalf("index has %v tuples, want 3", got)
	}
}

func TestBuildProjectionDedupes(t *testing.T) {
	_, tbl := smallTable(t)
	store := index.NewStore(index.Options{})
	// Projection onto column a has 2 distinct values over 3 rows.
	ix, err := store.Build("Ta", tbl, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := store.Kernel().SatCount(ix.Root()); got != 2 {
		t.Fatalf("projection index has %v tuples, want 2", got)
	}
}

func TestBuildRejectsBadArgs(t *testing.T) {
	_, tbl := smallTable(t)
	store := index.NewStore(index.Options{})
	if _, err := store.Build("X", tbl, nil, nil); err == nil {
		t.Fatal("no columns accepted")
	}
	if _, err := store.Build("X", tbl, []int{0, 1}, []int{0}); err == nil {
		t.Fatal("wrong order length accepted")
	}
	if _, err := store.Build("X", tbl, []int{0, 1}, []int{0, 0}); err == nil {
		t.Fatal("non-permutation accepted")
	}
	if _, err := store.Build("X", tbl, []int{0}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Build("X", tbl, []int{0}, nil); err == nil {
		t.Fatal("duplicate index name accepted")
	}
}

func TestInsertDeleteMaintenance(t *testing.T) {
	_, tbl := smallTable(t)
	store := index.NewStore(index.Options{})
	ix, err := store.Build("T", tbl, []int{0, 1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	before := ix.Root()
	// Values already interned, so the codes fit the blocks.
	row := tbl.Insert("a2", "b2", "c1")
	if err := ix.Insert(row); err != nil {
		t.Fatal(err)
	}
	if !ix.Contains(row) {
		t.Fatal("inserted row missing")
	}
	if err := ix.Delete(row, false); err != nil {
		t.Fatal(err)
	}
	if ix.Contains(row) {
		t.Fatal("deleted row still present")
	}
	// Canonicity: after insert+delete the root is the original ref.
	if ix.Root() != before {
		t.Fatal("insert+delete did not round-trip to the identical BDD")
	}
	// Bag semantics: stillPresent suppresses the delete.
	if err := ix.Delete(tbl.Row(0), true); err != nil {
		t.Fatal(err)
	}
	if !ix.Contains(tbl.Row(0)) {
		t.Fatal("delete with stillPresent removed the tuple")
	}
}

func TestInsertDeleteRandomizedAgainstRebuild(t *testing.T) {
	cat := relation.NewCatalog()
	tbl, err := cat.CreateTable("R", []relation.Column{{Name: "a"}, {Name: "b"}})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-intern domains so codes stay in range.
	for i := 0; i < 16; i++ {
		cat.Domain("a").Intern(string(rune('a' + i)))
		cat.Domain("b").Intern(string(rune('A' + i)))
	}
	rng := rand.New(rand.NewSource(3))
	store := index.NewStore(index.Options{})
	ix, err := store.Build("R", tbl, []int{0, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	present := map[[2]int32]bool{}
	for step := 0; step < 300; step++ {
		a, b := int32(rng.Intn(16)), int32(rng.Intn(16))
		row := []int32{a, b}
		if present[[2]int32{a, b}] {
			if err := ix.Delete(row, false); err != nil {
				t.Fatal(err)
			}
			delete(present, [2]int32{a, b})
		} else {
			if err := ix.Insert(row); err != nil {
				t.Fatal(err)
			}
			present[[2]int32{a, b}] = true
		}
		if got := store.Kernel().SatCount(ix.Root()); got != float64(len(present)) {
			t.Fatalf("step %d: index has %v tuples, want %d", step, got, len(present))
		}
	}
}

func TestBudgetOnBuild(t *testing.T) {
	cat := relation.NewCatalog()
	tbl, err := cat.CreateTable("R", []relation.Column{{Name: "a"}, {Name: "b"}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		tbl.Insert(string(rune(rng.Intn(64))), string(rune(rng.Intn(64))))
	}
	store := index.NewStore(index.Options{NodeBudget: 64})
	_, err = store.Build("R", tbl, []int{0, 1}, nil)
	if !errors.Is(err, bdd.ErrBudget) {
		t.Fatalf("expected ErrBudget, got %v", err)
	}
	// The store remains usable: the kernel error was cleared and a small
	// build succeeds.
	small, err := cat.CreateTable("S", []relation.Column{{Name: "a"}})
	if err != nil {
		t.Fatal(err)
	}
	small.Insert("x")
	if _, err := store.Build("S", small, []int{0}, nil); err != nil {
		t.Fatalf("store unusable after budget abort: %v", err)
	}
}

func TestDropReleasesNodes(t *testing.T) {
	_, tbl := smallTable(t)
	store := index.NewStore(index.Options{})
	ix, err := store.Build("T", tbl, []int{0, 1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	root := ix.Root()
	store.Drop("T")
	if store.Index("T") != nil {
		t.Fatal("index still registered")
	}
	store.Kernel().GC()
	// After GC the dropped root's nodes are gone; the easiest observable is
	// total live count returning to near-terminal levels.
	if store.Kernel().Size() > 8 {
		t.Fatalf("nodes not reclaimed: %d live", store.Kernel().Size())
	}
	_ = root
}

func TestCustomOrderChangesLayoutNotSemantics(t *testing.T) {
	_, tbl := smallTable(t)
	s1 := index.NewStore(index.Options{})
	s2 := index.NewStore(index.Options{})
	ix1, err := s1.Build("T", tbl, []int{0, 1, 2}, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	ix2, err := s2.Build("T", tbl, []int{0, 1, 2}, []int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tbl.Len(); i++ {
		if !ix1.Contains(tbl.Row(i)) || !ix2.Contains(tbl.Row(i)) {
			t.Fatal("row missing under custom order")
		}
	}
	if s1.Kernel().SatCount(ix1.Root()) != s2.Kernel().SatCount(ix2.Root()) {
		t.Fatal("orders disagree on tuple count")
	}
	// The layout really differs: block variables of column 2 come first.
	if ix2.Domain(2).Vars()[0] != 0 {
		t.Fatal("custom order did not place column 2 first")
	}
}

func TestValueOverflowReported(t *testing.T) {
	cat := relation.NewCatalog()
	tbl, err := cat.CreateTable("R", []relation.Column{{Name: "a"}})
	if err != nil {
		t.Fatal(err)
	}
	tbl.Insert("v1")
	tbl.Insert("v2")
	store := index.NewStore(index.Options{})
	ix, err := store.Build("R", tbl, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Grow the dictionary past the 1-bit block capacity.
	row := tbl.Insert("v3")
	if err := ix.Insert(row); err == nil {
		t.Fatal("overflowing code accepted; index now silently wrong")
	}
}
