package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/index"
	"repro/internal/logic"
	"repro/internal/relation"
	"repro/internal/sqlengine"
)

// fig5.go reproduces Figure 5: BDD vs SQL constraint checking on the
// customer data — membership/implication constraints against a 10,000-row
// Constraints relation (a), and the functional dependency areacode → state
// (b, paper: BDD wins by 6–8×).

// membershipConstraint is the Figure 5(a) check: every base pair whose city
// appears in the constraints table must itself be an allowed pair.
const membershipConstraint = `
	forall c, a: PAIRS(c, a) and (exists x: CONS(c, x)) => CONS(c, a)
`

// Fig5a measures the membership-constraint check for both pair schemas of
// the paper — (city, areacode) and (city, state) — across base-relation
// sizes. The BDD side encodes the constraints relation into a BDD on the
// fly, as the paper describes; the SQL side runs the compiled join /
// anti-join plan.
func Fig5a(cfg Config) error {
	w := cfg.out()
	fmt.Fprintln(w, "=== Figure 5(a): membership constraints, BDD vs SQL (10,000 constraints) ===")
	fmt.Fprintf(w, "%-9s | %14s %14s %8s | %14s %14s %8s\n",
		"tuples", "c-a sql", "c-a bdd", "gain", "c-s sql", "c-s bdd", "gain")
	for _, n := range cfg.customerSizes() {
		cat := relation.NewCatalog()
		data, err := datagen.Customers(cat, "CUST", datagen.CustomerSpec{Tuples: n}, cfg.rng(int64(n)))
		if err != nil {
			return err
		}
		cons, err := datagen.MembershipConstraints(cat, "CONSCA", data, 10000, cfg.rng(int64(n+1)))
		if err != nil {
			return err
		}
		// The city→state constraints relation, derived from ground truth.
		cons2, err := cat.CreateTable("CONSCS", []relation.Column{
			{Name: "city", Domain: "CUST.city"},
			{Name: "state", Domain: "CUST.state"},
		})
		if err != nil {
			return err
		}
		rng := cfg.rng(int64(n + 2))
		for i := 0; i < 10000; i++ {
			city := rng.Intn(datagen.NumCities)
			cons2.InsertCodes([]int32{int32(city), int32(data.CityState[city])})
		}
		ca, err := runFig5aVariant(data.Table, []int{2, 0}, cons)
		if err != nil {
			return err
		}
		cs, err := runFig5aVariant(data.Table, []int{2, 3}, cons2)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-9d | %14v %14v %8.1f | %14v %14v %8.1f\n",
			n, ca.sql.Round(time.Microsecond), ca.bdd.Round(time.Microsecond), ca.gain(),
			cs.sql.Round(time.Microsecond), cs.bdd.Round(time.Microsecond), cs.gain())
	}
	fmt.Fprintln(w, "paper: BDD outperforms SQL by significant margins, growing with relation size")
	return nil
}

type fig5Result struct {
	sql, bdd time.Duration
}

func (r fig5Result) gain() float64 { return float64(r.sql) / float64(r.bdd) }

// runFig5aVariant times one membership check. pairCols selects the two base
// columns forming the pairs (e.g. city+areacode).
func runFig5aVariant(base *relation.Table, pairCols []int, cons *relation.Table) (fig5Result, error) {
	var out fig5Result
	// BDD side: index on the base pairs is assumed (it is the logical
	// index the system maintains); the constraints relation is encoded on
	// the fly inside the timed region.
	store := index.NewStore(index.Options{})
	if _, err := store.Build("PAIRS", base, pairCols, nil); err != nil {
		return out, err
	}
	f, err := logic.Parse(membershipConstraint)
	if err != nil {
		return out, err
	}
	ct := logic.Constraint{Name: "membership", F: f}
	res := fig5Resolver{base: base, pairCols: pairCols, cons: cons}

	start := time.Now()
	if _, err := store.Build("CONS", cons, []int{0, 1}, nil); err != nil {
		return out, err
	}
	ev := logic.NewEvaluator(store, res, logic.DefaultEvalOptions())
	if _, err := ev.Eval(ct); err != nil {
		return out, err
	}
	out.bdd = time.Since(start)
	store.Drop("CONS")

	// SQL side: the compiled join / anti-join plan over the base table.
	start = time.Now()
	q, err := sqlengine.Compile(ct, res)
	if err != nil {
		return out, err
	}
	if _, _, err := q.Run(); err != nil {
		return out, err
	}
	out.sql = time.Since(start)
	return out, nil
}

// fig5Resolver maps PAIRS to the base projection and CONS to the
// constraints table.
type fig5Resolver struct {
	base     *relation.Table
	pairCols []int
	cons     *relation.Table
}

// ResolvePred implements logic.Resolver.
func (r fig5Resolver) ResolvePred(name string, arity int) (*relation.Table, []int, error) {
	switch name {
	case "PAIRS":
		if arity != len(r.pairCols) {
			return nil, nil, fmt.Errorf("PAIRS wants %d args", len(r.pairCols))
		}
		return r.base, r.pairCols, nil
	case "CONS":
		if arity != 2 {
			return nil, nil, fmt.Errorf("CONS wants 2 args")
		}
		return r.cons, []int{0, 1}, nil
	default:
		return nil, nil, fmt.Errorf("unknown predicate %q", name)
	}
}

// Fig5b measures the functional-dependency constraint areacode → state
// three ways: the SQL self-join plan the generic translation produces, the
// in-memory hash group-by shortcut, and the BDD projection-and-counting
// strategy the paper describes ("projection of suitable attributes ... and
// manipulation of the resulting BDDs"). The generic BDD self-join is also
// reported for reference.
func Fig5b(cfg Config) error {
	w := cfg.out()
	fmt.Fprintln(w, "=== Figure 5(b): FD areacode → state, BDD vs SQL ===")
	fmt.Fprintf(w, "%-9s | %14s %14s | %14s %14s | %8s\n",
		"tuples", "sql selfjoin", "sql groupby", "bdd project", "bdd selfjoin", "gain*")
	for _, n := range cfg.customerSizes() {
		cat := relation.NewCatalog()
		// A touch of noise so the FD is genuinely violated sometimes, as on
		// real dirty data.
		data, err := datagen.Customers(cat, "CUST", datagen.CustomerSpec{
			Tuples: n, NoiseRate: 0.001,
		}, cfg.rng(int64(2*n)))
		if err != nil {
			return err
		}
		f, err := logic.Parse(`forall a, s1, s2: NCS(a, _, s1) and NCS(a, _, s2) => s1 = s2`)
		if err != nil {
			return err
		}
		ct := logic.Constraint{Name: "fd", F: f}

		fast := core.New(cat, core.Options{})
		if _, err := fast.BuildIndex("NCS", "CUST", []string{"areacode", "city", "state"}, core.OrderProbConverge); err != nil {
			return err
		}
		rFast := fast.CheckOne(ct)
		if rFast.Err != nil {
			return rFast.Err
		}

		generic := core.New(cat, core.Options{NoFDFastPath: true})
		if _, err := generic.BuildIndex("NCS", "CUST", []string{"areacode", "city", "state"}, core.OrderProbConverge); err != nil {
			return err
		}
		rGen := generic.CheckOne(ct)
		if rGen.Err != nil {
			return rGen.Err
		}

		start := time.Now()
		q, err := sqlengine.Compile(ct, fast.Resolver())
		if err != nil {
			return err
		}
		sqlViolated, _, err := q.Run()
		if err != nil {
			return err
		}
		sqlJoin := time.Since(start)

		start = time.Now()
		gbViolated := sqlengine.CheckFD(data.Table, []int{0}, []int{3})
		sqlGroup := time.Since(start)

		if rFast.Violated != sqlViolated || rGen.Violated != sqlViolated || gbViolated != sqlViolated {
			return fmt.Errorf("fig5b: strategies disagree at %d tuples", n)
		}
		fmt.Fprintf(w, "%-9d | %14v %14v | %14v %14v | %8.1f\n",
			n, sqlJoin.Round(time.Microsecond), sqlGroup.Round(time.Microsecond),
			rFast.Duration.Round(time.Microsecond), rGen.Duration.Round(time.Microsecond),
			float64(sqlJoin)/float64(rFast.Duration))
	}
	fmt.Fprintln(w, "gain* = sql selfjoin / bdd project. paper: BDD outperforms SQL by a factor of 6-8;")
	fmt.Fprintln(w, "our in-memory hash group-by is a far stronger baseline than the paper's RDBMS")
	return nil
}

// binding pairs a table with predicate column positions.
type binding struct {
	t    *relation.Table
	cols []int
}

// fixedResolver resolves predicate names from a fixed map.
type fixedResolver map[string]binding

// ResolvePred implements logic.Resolver.
func (r fixedResolver) ResolvePred(name string, arity int) (*relation.Table, []int, error) {
	b, ok := r[name]
	if !ok {
		return nil, nil, fmt.Errorf("unknown predicate %q", name)
	}
	if arity != len(b.cols) {
		return nil, nil, fmt.Errorf("%s wants %d args, got %d", name, len(b.cols), arity)
	}
	return b.t, b.cols, nil
}
