package experiments

// reorder.go measures dynamic variable reordering (sifting) on a workload
// whose schema ordering is deliberately pessimal: the relation carries two
// correlated column pairs interleaved as (k1, x1, k2, x2), where k2 copies
// k1 and x2 copies x1 (minus a little noise). An index built in schema
// order must carry k1's full value across the unrelated x1 block before it
// can match k2, so the BDD is wide; sifting discovers the paired layout and
// collapses it. The experiment reports the live-node count before and after
// the sift, check-latency quantiles over a churn-plus-check workload in both
// regimes, and the write-path pause one sift costs.

import (
	"fmt"
	"time"

	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/relation"
)

// reorderConstraints are the checks timed in both regimes: the key-pair
// copy invariant (holds) and the value-pair copy invariant (violated by the
// injected noise rows). Both quantify over the full index, so their cost
// tracks the kernel's live size.
const reorderConstraints = `
	constraint key_pair:
	    forall a, b, c, d: R(a, b, c, d) => a = c.
	constraint val_pair:
	    forall a, b, c, d: R(a, b, c, d) => b = d.
`

// Reorder builds the skewed index, runs the check workload under the schema
// order, sifts once, and reruns the identical workload under the sifted
// order.
func Reorder(cfg Config) error {
	w := cfg.out()
	tuples, rounds, dom := 20000, 60, 256
	if cfg.Full {
		tuples, rounds = 100000, 120
	}
	cat := relation.NewCatalog()
	tbl, err := cat.CreateTable("R", []relation.Column{
		{Name: "k1", Domain: "pairK"}, {Name: "x1", Domain: "pairX"},
		{Name: "k2", Domain: "pairK"}, {Name: "x2", Domain: "pairX"},
	})
	if err != nil {
		return err
	}
	rng := cfg.rng(700)
	used := make(map[string]bool)
	var pool [][]string
	fresh := func() []string {
		for {
			k := fmt.Sprintf("K%03d", rng.Intn(dom))
			x := fmt.Sprintf("X%03d", rng.Intn(dom))
			row := []string{k, x, k, x}
			if rng.Float64() < 0.003 { // noise: break the x-pair copy
				row[3] = fmt.Sprintf("X%03d", rng.Intn(dom))
			}
			key := row[0] + "|" + row[1] + "|" + row[3]
			if used[key] {
				continue
			}
			used[key] = true
			return row
		}
	}
	// The first dom rows pin every dictionary value so later churn never
	// grows a dictionary past the block width the index build chose.
	for i := 0; i < tuples; i++ {
		var row []string
		if i < dom {
			row = []string{
				fmt.Sprintf("K%03d", i), fmt.Sprintf("X%03d", i),
				fmt.Sprintf("K%03d", i), fmt.Sprintf("X%03d", i),
			}
			used[row[0]+"|"+row[1]+"|"+row[3]] = true
		} else {
			row = fresh()
		}
		tbl.Insert(row...)
		pool = append(pool, row)
	}

	chk := core.New(cat, core.Options{NodeBudget: 16_000_000})
	buildStart := time.Now()
	if _, err := chk.BuildIndex("R", "R", nil, core.OrderSchema); err != nil {
		return err
	}
	buildTime := time.Since(buildStart)
	cts, err := logic.ParseConstraints(reorderConstraints)
	if err != nil {
		return err
	}

	// One churn round changes the relation (one fresh insert, one delete of
	// the oldest row) so every check re-derives its answer against a new
	// index root rather than replaying a cached verdict, then times every
	// constraint with the operation caches dropped first — the cold-cache
	// regime a freshly replicated kernel is in right after adopting a new
	// epoch, where evaluation cost tracks the live size of the index.
	head := 0
	churn := func(hist *obs.Histogram) error {
		row := fresh()
		if err := chk.InsertTuple("R", row...); err != nil {
			return err
		}
		pool = append(pool, row)
		if err := chk.DeleteTuple("R", pool[head]...); err != nil {
			return err
		}
		head++
		chk.Store().Kernel().ClearCaches()
		for _, ct := range cts {
			res := chk.CheckOne(ct)
			if res.Err != nil {
				return fmt.Errorf("reorder: %s: %w", ct.Name, res.Err)
			}
			if res.FellBack {
				return fmt.Errorf("reorder: %s fell back: %v", ct.Name, res.FallbackReason)
			}
			if (ct.Name == "key_pair") == res.Violated {
				return fmt.Errorf("reorder: %s verdict flipped (violated=%v)", ct.Name, res.Violated)
			}
			hist.Observe(res.Duration)
		}
		return nil
	}
	phase := func(hist *obs.Histogram) error {
		for r := 0; r < rounds; r++ {
			if err := churn(hist); err != nil {
				return err
			}
		}
		return nil
	}

	var before, after obs.Histogram
	if err := phase(&before); err != nil {
		return err
	}
	chk.Store().Kernel().GC()
	liveBefore := chk.KernelStats().Live

	siftStart := time.Now()
	st := chk.Reorder(bdd.ReorderOptions{})
	pause := time.Since(siftStart)
	if err := chk.Store().Kernel().Err(); err != nil {
		return err
	}
	liveAfter := chk.KernelStats().Live

	if err := phase(&after); err != nil {
		return err
	}

	drop := 100 * (1 - float64(liveAfter)/float64(liveBefore))
	fmt.Fprintf(w, "=== Reorder: sifting a pessimal schema order (%d tuples, %d check rounds) ===\n", tuples, rounds)
	fmt.Fprintf(w, "index build (schema order): %v\n", buildTime.Round(time.Millisecond))
	fmt.Fprintf(w, "%-14s %12s %12s %12s %12s\n", "phase", "live nodes", "p50", "p95", "p99")
	bs, as := before.Snapshot(), after.Snapshot()
	fmt.Fprintf(w, "%-14s %12d %12v %12v %12v\n", "schema order", liveBefore,
		bs.Quantile(0.50), bs.Quantile(0.95), bs.Quantile(0.99))
	fmt.Fprintf(w, "%-14s %12d %12v %12v %12v\n", "sifted", liveAfter,
		as.Quantile(0.50), as.Quantile(0.95), as.Quantile(0.99))
	fmt.Fprintf(w, "sift pause: %v (%d -> %d nodes, %.1f%% drop, %d swaps over %d blocks)\n",
		pause.Round(time.Millisecond), st.Before, st.After, drop, st.Swaps, st.Blocks)
	fmt.Fprintln(w, "expectation: >= 20% live-node drop and a lower p95 under the sifted order")

	cfg.record(BenchRow{
		Experiment: "reorder", Name: "check_before",
		Params:  map[string]any{"tuples": tuples, "rounds": rounds, "order": "schema"},
		NsPerOp: bs.Quantile(0.50).Nanoseconds(), Nodes: liveBefore,
	}.withPercentiles(&before))
	cfg.record(BenchRow{
		Experiment: "reorder", Name: "check_after",
		Params:  map[string]any{"tuples": tuples, "rounds": rounds, "order": "sifted"},
		NsPerOp: as.Quantile(0.50).Nanoseconds(), Nodes: liveAfter,
	}.withPercentiles(&after))
	cfg.record(BenchRow{
		Experiment: "reorder", Name: "sift",
		Params: map[string]any{
			"tuples": tuples, "nodes_before": st.Before, "nodes_after": st.After,
			"swaps": st.Swaps, "blocks": st.Blocks, "drop_pct": drop,
		},
		NsPerOp: pause.Nanoseconds(), Nodes: liveAfter,
	})
	return nil
}
