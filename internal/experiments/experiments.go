// Package experiments regenerates every table and figure of the paper's
// evaluation (§5). Each function prints the same rows or series the paper
// reports; cmd/cvbench drives them and EXPERIMENTS.md records the measured
// results next to the paper's numbers.
//
// Absolute milliseconds differ from the paper (different decade, different
// substrate); the claims under reproduction are the shapes: which approach
// wins, by what rough factor, and how the effect moves with relation
// structure and size.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"repro/internal/datagen"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/ordering"
	"repro/internal/relation"
	"repro/internal/stats"
)

// BenchRow is one machine-readable measurement emitted alongside the text
// report (cvbench -json). Name identifies the measurement within its
// experiment; Params carries the workload coordinates (tuple count, budget,
// query, approach); Nodes is zero when the measurement has no BDD size.
type BenchRow struct {
	Experiment string         `json:"experiment"`
	Name       string         `json:"name"`
	Params     map[string]any `json:"params,omitempty"`
	NsPerOp    int64          `json:"ns_per_op"`
	Nodes      int            `json:"nodes,omitempty"`
	// P50NS/P95NS/P99NS are per-operation latency quantiles, present for
	// measurements that time each operation individually (fig4 updates,
	// parallel checks). Quantiles come from a log2-bucket histogram
	// (internal/obs), so each is the enclosing power-of-two upper bound —
	// an over-estimate by at most 2x.
	P50NS int64 `json:"p50_ns,omitempty"`
	P95NS int64 `json:"p95_ns,omitempty"`
	P99NS int64 `json:"p99_ns,omitempty"`
}

// withPercentiles fills the row's latency quantiles from h.
func (r BenchRow) withPercentiles(h *obs.Histogram) BenchRow {
	s := h.Snapshot()
	r.P50NS = s.Quantile(0.50).Nanoseconds()
	r.P95NS = s.Quantile(0.95).Nanoseconds()
	r.P99NS = s.Quantile(0.99).Nanoseconds()
	return r
}

// Config controls workload sizes and output.
type Config struct {
	// Out receives the report (defaults to io.Discard if nil).
	Out io.Writer
	// Full selects the paper-scale workloads (400k tuples, 120 orderings);
	// otherwise reduced sizes keep every experiment in laptop-minutes.
	Full bool
	// Seed is the base random seed.
	Seed int64
	// Record, when non-nil, receives a BenchRow for every timed measurement
	// of the instrumented experiments (fig4, table1, threshold, parallel).
	Record func(BenchRow)
	// Parallel caps the replica sweep of the parallel experiment: pool sizes
	// double from 1 up to this bound (0 = 8).
	Parallel int
}

func (c Config) record(row BenchRow) {
	if c.Record != nil {
		c.Record(row)
	}
}

func (c Config) out() io.Writer {
	if c.Out == nil {
		return io.Discard
	}
	return c.Out
}

func (c Config) rng(offset int64) *rand.Rand {
	return rand.New(rand.NewSource(c.Seed*1000 + 7 + offset))
}

// orderingTuples returns the relation size for the §5.1 ordering studies.
func (c Config) orderingTuples() int {
	if c.Full {
		return 400000
	}
	return 20000
}

// families are the §5.1 relation families, by number of products
// (0 encodes RANDOM).
var families = []struct {
	name     string
	products int
}{
	{"1-PROD", 1},
	{"4-PROD", 4},
	{"8-PROD", 8},
	{"RANDOM", 0},
}

// buildFamily generates one relation of a family with 5 attributes.
func buildFamily(products, tuples int, rng *rand.Rand) (*relation.Table, error) {
	cat := relation.NewCatalog()
	return datagen.KProd(cat, "R", datagen.ProdSpec{
		Products: products, Attrs: 5, Tuples: tuples, DomSize: 100,
	}, rng)
}

// bddSizeFor builds a throwaway index under the ordering and returns its
// node count.
func bddSizeFor(t *relation.Table, order []int) (int, error) {
	store := index.NewStore(index.Options{})
	cols := make([]int, t.NumCols())
	for i := range cols {
		cols[i] = i
	}
	ix, err := store.Build("X", t, cols, order)
	if err != nil {
		return 0, err
	}
	return ix.NodeCount(), nil
}

// allOrderingSizes measures the BDD size of every attribute permutation.
func allOrderingSizes(t *relation.Table) ([]int, [][]int, error) {
	perms := ordering.Permutations(t.NumCols())
	sizes := make([]int, len(perms))
	for i, p := range perms {
		s, err := bddSizeFor(t, p)
		if err != nil {
			return nil, nil, err
		}
		sizes[i] = s
	}
	return sizes, perms, nil
}

// Fig2a reproduces Figure 2(a): the BDD node count of every variable
// ordering, best to worst, per relation family, and the best:worst ratio
// table (paper: 71.29 / 6.29 / 2.26 / 1.02 at 400k tuples).
func Fig2a(cfg Config) error {
	w := cfg.out()
	fmt.Fprintf(w, "=== Figure 2(a): effect of variable ordering (%d tuples, 5 attrs) ===\n", cfg.orderingTuples())
	fmt.Fprintf(w, "%-8s %12s %12s %10s\n", "family", "best nodes", "worst nodes", "ratio")
	for fi, fam := range families {
		t, err := buildFamily(fam.products, cfg.orderingTuples(), cfg.rng(int64(fi)))
		if err != nil {
			return err
		}
		sizes, _, err := allOrderingSizes(t)
		if err != nil {
			return err
		}
		sorted := append([]int(nil), sizes...)
		sort.Ints(sorted)
		best, worst := sorted[0], sorted[len(sorted)-1]
		fmt.Fprintf(w, "%-8s %12d %12d %10.2f\n", fam.name, best, worst, float64(worst)/float64(best))
	}
	fmt.Fprintln(w, "paper ratios: 1-PROD 71.29, 4-PROD 6.29, 8-PROD 2.26, RAND 1.02")
	return nil
}

// orderingScore ranks a full ordering under one of the greedy measures: the
// cumulative greedy objective along the ordering's prefixes (lower is
// better for both measures).
func orderingScore(t *relation.Table, order []int, domSizes []int, useInfoGain bool) float64 {
	score := 0.0
	for i := 1; i <= len(order); i++ {
		prefix := order[:i]
		if useInfoGain {
			score += stats.CondEntropy(t, prefix[:i-1], prefix[i-1])
		} else {
			score += stats.Phi(t, prefix, domSizes)
		}
	}
	return score
}

// Fig2bc reproduces Figures 2(b) and 2(c): the 120 orderings of a 1-PROD
// relation ranked by each heuristic's measure, with the true BDD size at
// each rank. A well-correlated heuristic shows sizes increasing with rank.
func Fig2bc(cfg Config) error {
	w := cfg.out()
	t, err := buildFamily(1, cfg.orderingTuples(), cfg.rng(40))
	if err != nil {
		return err
	}
	sizes, perms, err := allOrderingSizes(t)
	if err != nil {
		return err
	}
	domSizes := ordering.ActiveDomainSizes(t)
	rank := func(useInfoGain bool) []int {
		idx := make([]int, len(perms))
		for i := range idx {
			idx[i] = i
		}
		scores := make([]float64, len(perms))
		for i, p := range perms {
			scores[i] = orderingScore(t, p, domSizes, useInfoGain)
		}
		sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
		out := make([]int, len(idx))
		for r, i := range idx {
			out[r] = sizes[i]
		}
		return out
	}
	trueRank := append([]int(nil), sizes...)
	sort.Ints(trueRank)
	migRank := rank(true)
	pcRank := rank(false)

	fmt.Fprintf(w, "=== Figures 2(b,c): heuristic ranking vs true ranking (1-PROD) ===\n")
	fmt.Fprintf(w, "%-6s %12s %14s %14s\n", "rank", "true size", "MaxInf-Gain", "Prob-Converge")
	step := len(sizes) / 12
	if step == 0 {
		step = 1
	}
	for r := 0; r < len(sizes); r += step {
		fmt.Fprintf(w, "%-6d %12d %14d %14d\n", r+1, trueRank[r], migRank[r], pcRank[r])
	}
	fmt.Fprintf(w, "top-10 agreement with true ranking: MaxInf-Gain %d/10, Prob-Converge %d/10\n",
		topAgreement(trueRank, migRank, 10), topAgreement(trueRank, pcRank, 10))
	fmt.Fprintln(w, "paper: Prob-Converge's top 10 coincide with the true ranking; MaxInf-Gain only the top 2")
	return nil
}

// topAgreement counts rank positions among the first n where the heuristic
// rank's true size equals the true rank's size (size ties make this the
// natural comparison).
func topAgreement(trueRank, heurRank []int, n int) int {
	agree := 0
	for i := 0; i < n && i < len(trueRank); i++ {
		if trueRank[i] == heurRank[i] {
			agree++
		}
	}
	return agree
}

// Fig3 reproduces Figure 3: per family, 20 relations; α is the size ratio
// of the MaxInf-Gain ordering to the optimum, β the same for Prob-Converge.
// Paper: β < 1.5 everywhere; α exceeds 2.5 on several structured runs.
func Fig3(cfg Config) error {
	w := cfg.out()
	runs := 20
	tuples := cfg.orderingTuples() / 2 // denser than /4: the Φ statistics need meaningful group counts
	if !cfg.Full {
		runs = 8
	}
	fmt.Fprintf(w, "=== Figure 3: heuristic vs optimal ordering (%d runs/family, %d tuples) ===\n", runs, tuples)
	fmt.Fprintf(w, "%-8s %10s %10s %10s %10s %12s %12s\n",
		"family", "mean α", "max α", "mean β", "max β", "α>2.5 runs", "β<1.5 runs")
	for fi, fam := range families {
		var sumA, sumB, maxA, maxB float64
		overA, underB := 0, 0
		for run := 0; run < runs; run++ {
			rng := cfg.rng(int64(100 + fi*runs + run))
			t, err := buildFamily(fam.products, tuples, rng)
			if err != nil {
				return err
			}
			sizes, _, err := allOrderingSizes(t)
			if err != nil {
				return err
			}
			best := sizes[0]
			for _, s := range sizes {
				if s < best {
					best = s
				}
			}
			mig, err := bddSizeFor(t, ordering.MaxInfGain(t))
			if err != nil {
				return err
			}
			pc, err := bddSizeFor(t, ordering.ProbConverge(t, nil))
			if err != nil {
				return err
			}
			alpha := float64(mig) / float64(best)
			beta := float64(pc) / float64(best)
			sumA += alpha
			sumB += beta
			if alpha > maxA {
				maxA = alpha
			}
			if beta > maxB {
				maxB = beta
			}
			if alpha > 2.5 {
				overA++
			}
			if beta < 1.5 {
				underB++
			}
		}
		fmt.Fprintf(w, "%-8s %10.2f %10.2f %10.2f %10.2f %8d/%-3d %8d/%-3d\n",
			fam.name, sumA/float64(runs), maxA, sumB/float64(runs), maxB, overA, runs, underB, runs)
	}
	fmt.Fprintln(w, "paper: β < 1.5 on all runs; α > 2.5 on several 1-PROD and 4-PROD runs")
	return nil
}

// customerSizes returns the relation-size sweep of Figure 4/5.
func (c Config) customerSizes() []int {
	if c.Full {
		return []int{50000, 100000, 150000, 200000, 250000, 300000, 350000, 406769}
	}
	return []int{10000, 25000, 50000, 100000}
}

// Fig4 reproduces Figure 4: BDD construction time (a), average incremental
// update time (b) and node count (c) for the paper's two customer indices —
// ncs = (areacode, city, state) with 29 boolean variables and csz =
// (city, state, zipcode) with 35 — as the relation grows.
func Fig4(cfg Config) error {
	w := cfg.out()
	fmt.Fprintln(w, "=== Figure 4: index construction, maintenance and size (customer data) ===")
	fmt.Fprintf(w, "%-9s | %12s %12s | %12s %12s | %10s %10s\n",
		"tuples", "ncs build", "csz build", "ncs update", "csz update", "ncs nodes", "csz nodes")
	indices := []struct {
		name string
		cols []int
	}{
		{"ncs", []int{0, 2, 3}},
		{"csz", []int{2, 3, 4}},
	}
	for _, n := range cfg.customerSizes() {
		cat := relation.NewCatalog()
		data, err := datagen.Customers(cat, "CUST", datagen.CustomerSpec{Tuples: n}, cfg.rng(int64(n)))
		if err != nil {
			return err
		}
		var build [2]time.Duration
		var update [2]time.Duration
		var nodes [2]int
		for i, spec := range indices {
			store := index.NewStore(index.Options{})
			start := time.Now()
			ix, err := store.Build(spec.name, data.Table, spec.cols, nil)
			if err != nil {
				return err
			}
			build[i] = time.Since(start)
			nodes[i] = ix.NodeCount()
			// Average insert+delete cost over a sample of existing rows
			// (delete + reinsert keeps the index unchanged at the end).
			const updates = 2000
			rng := cfg.rng(int64(n + i))
			var hist obs.Histogram
			start = time.Now()
			for u := 0; u < updates; u++ {
				row := data.Table.Row(rng.Intn(data.Table.Len()))
				pairStart := time.Now()
				if err := ix.Delete(row, false); err != nil {
					return err
				}
				if err := ix.Insert(row); err != nil {
					return err
				}
				// One observation per delete+insert pair, halved to match the
				// per-operation mean the paper reports.
				hist.Observe(time.Since(pairStart) / 2)
			}
			update[i] = time.Since(start) / (2 * updates)
			cfg.record(BenchRow{
				Experiment: "fig4", Name: "build",
				Params:  map[string]any{"index": spec.name, "tuples": n},
				NsPerOp: build[i].Nanoseconds(), Nodes: nodes[i],
			})
			cfg.record(BenchRow{
				Experiment: "fig4", Name: "update",
				Params:  map[string]any{"index": spec.name, "tuples": n},
				NsPerOp: update[i].Nanoseconds(), Nodes: nodes[i],
			}.withPercentiles(&hist))
		}
		fmt.Fprintf(w, "%-9d | %12v %12v | %12v %12v | %10d %10d\n",
			n, build[0].Round(time.Millisecond), build[1].Round(time.Millisecond),
			update[0].Round(time.Microsecond), update[1].Round(time.Microsecond),
			nodes[0], nodes[1])
	}
	fmt.Fprintln(w, "paper at 406,769 tuples: builds of a few seconds, updates of ~60-100µs,")
	fmt.Fprintln(w, "ncs ≈ 100k nodes / csz ≈ 160k nodes (20 bytes per node)")
	return nil
}
