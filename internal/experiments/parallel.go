package experiments

// parallel.go measures the replicated-kernel read path (internal/replica):
// constraint-check throughput against one frozen index version as the pool
// grows from 1 to N replicas. This experiment has no paper counterpart — the
// paper's engine is single-threaded — but quantifies the multi-core headroom
// the replicated read path adds on top of the paper's data structures.

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/replica"
)

// parallelSizes is the replica sweep: powers of two up to the cap, plus the
// cap itself when it is not a power of two.
func (c Config) parallelSizes() []int {
	max := c.Parallel
	if max <= 0 {
		max = 8
	}
	var sizes []int
	for n := 1; n <= max; n *= 2 {
		sizes = append(sizes, n)
	}
	if last := sizes[len(sizes)-1]; last != max {
		sizes = append(sizes, max)
	}
	return sizes
}

// Parallel measures checks/sec through a replica.Pool at each pool size on
// the Figure 5(a) membership workload. Scaling toward the core count is the
// success criterion; on a single core all sizes collapse to the same rate.
func Parallel(cfg Config) error {
	w := cfg.out()
	tuples, cons, checks := 20000, 2000, 2000
	if cfg.Full {
		tuples, cons, checks = 100000, 10000, 8000
	}
	cat := relation.NewCatalog()
	data, err := datagen.Customers(cat, "CUST", datagen.CustomerSpec{Tuples: tuples, NoiseRate: 0.001}, cfg.rng(900))
	if err != nil {
		return err
	}
	chk := core.New(cat, core.Options{NodeBudget: 8_000_000})
	if _, err := chk.BuildIndex("CA", "CUST", []string{"city", "areacode"}, core.OrderProbConverge); err != nil {
		return err
	}
	if _, err := datagen.MembershipConstraints(cat, "CONS", data, cons, cfg.rng(901)); err != nil {
		return err
	}
	if _, err := chk.BuildIndex("CONS", "CONS", nil, core.OrderSchema); err != nil {
		return err
	}
	f, err := logic.Parse(`forall c, a: CA(c, a) and (exists x: CONS(c, x)) => CONS(c, a)`)
	if err != nil {
		return err
	}
	ct := logic.Constraint{Name: "membership", F: f}
	v, err := replica.NewVersion(chk, 1)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "=== Parallel check throughput: replicated kernels (%d tuples, %d checks, %d CPUs) ===\n",
		tuples, checks, runtime.NumCPU())
	fmt.Fprintf(w, "%-10s %14s %14s %10s %10s %10s\n", "replicas", "total", "ns/check", "checks/s", "p95", "p99")
	var base float64
	for _, n := range cfg.parallelSizes() {
		pool, err := replica.New(n, v)
		if err != nil {
			return err
		}
		var hist obs.Histogram
		rate, elapsed, err := parallelRun(pool, n, checks, ct, &hist)
		pool.Close()
		if err != nil {
			return err
		}
		if base == 0 {
			base = rate
		}
		fmt.Fprintf(w, "%-10d %14v %14d %10.0f %10v %10v  (%.2fx)\n",
			n, elapsed.Round(time.Millisecond), elapsed.Nanoseconds()/int64(checks), rate,
			hist.Quantile(0.95), hist.Quantile(0.99), rate/base)
		cfg.record(BenchRow{
			Experiment: "parallel", Name: "check",
			Params: map[string]any{
				"replicas": n, "checks": checks, "tuples": tuples,
				"gomaxprocs": runtime.GOMAXPROCS(0), "cpus": runtime.NumCPU(),
			},
			NsPerOp: elapsed.Nanoseconds() / int64(checks),
		}.withPercentiles(&hist))
	}
	fmt.Fprintln(w, "expectation: near-linear scaling until the pool size reaches the core count")
	return nil
}

// parallelRun drives `checks` constraint checks through the pool from n
// submitter goroutines and returns the aggregate steady-state rate. Every
// worker is materialized at a barrier first and serves the constraint once,
// so version-adoption cost and the first cache-cold evaluation per replica
// stay out of the timed region — the measured regime is the repeated-check
// steady state a long-lived pool settles into between version swaps. Each
// check's submission-to-completion latency (queue wait included — the
// client-perceived figure) feeds hist.
func parallelRun(pool *replica.Pool, n, checks int, ct logic.Constraint, hist *obs.Histogram) (rate float64, elapsed time.Duration, err error) {
	var ready, warm sync.WaitGroup
	ready.Add(n)
	for i := 0; i < n; i++ {
		warm.Add(1)
		go func() {
			defer warm.Done()
			pool.Do(context.Background(), func(chk *core.Checker, _ uint64) {
				ready.Done()
				ready.Wait()
				chk.CheckOneOpts(ct, core.CheckOptions{NoSQLFallback: true})
			})
		}()
	}
	warm.Wait()

	var firstErr atomic.Pointer[error]
	fail := func(e error) {
		firstErr.CompareAndSwap(nil, &e)
	}
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < n; g++ {
		share := checks / n
		if g < checks%n {
			share++
		}
		wg.Add(1)
		go func(share int) {
			defer wg.Done()
			for i := 0; i < share; i++ {
				checkStart := time.Now()
				err := pool.Do(context.Background(), func(chk *core.Checker, _ uint64) {
					if res := chk.CheckOneOpts(ct, core.CheckOptions{NoSQLFallback: true}); res.Err != nil {
						fail(res.Err)
					} else if res.FellBack {
						fail(fmt.Errorf("parallel: check fell back: %v", res.FallbackReason))
					}
				})
				hist.Observe(time.Since(checkStart))
				if err != nil {
					fail(err)
					return
				}
			}
		}(share)
	}
	wg.Wait()
	elapsed = time.Since(start)
	if e := firstErr.Load(); e != nil {
		return 0, 0, *e
	}
	return float64(checks) / elapsed.Seconds(), elapsed, nil
}
