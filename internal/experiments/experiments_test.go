package experiments_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// The experiment drivers are exercised end-to-end at reduced scale; the
// heavy ones are skipped under -short. Each must produce its header row and
// complete without strategy disagreements (the drivers cross-check BDD and
// SQL results internally and fail on mismatch).

func runExperiment(t *testing.T, name string, f func(experiments.Config) error, wantHeader string) {
	t.Helper()
	var buf bytes.Buffer
	cfg := experiments.Config{Out: &buf, Seed: 7}
	if err := f(cfg); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if !strings.Contains(buf.String(), wantHeader) {
		t.Fatalf("%s output missing %q:\n%s", name, wantHeader, buf.String())
	}
}

func TestThresholdExperiment(t *testing.T) {
	runExperiment(t, "threshold", experiments.Threshold, "threshold")
}

func TestFig5bExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment")
	}
	runExperiment(t, "fig5b", experiments.Fig5b, "Figure 5(b)")
}

func TestFig6bExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment")
	}
	runExperiment(t, "fig6b", experiments.Fig6b, "Figure 6(b)")
}

func TestFig6cExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment")
	}
	runExperiment(t, "fig6c", experiments.Fig6c, "Figure 6(c)")
}

func TestTable1Experiment(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment")
	}
	runExperiment(t, "table1", experiments.Table1, "Table 1")
}

func TestReorderExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment")
	}
	var buf bytes.Buffer
	var rows []experiments.BenchRow
	cfg := experiments.Config{
		Out: &buf, Seed: 7,
		Record: func(r experiments.BenchRow) { rows = append(rows, r) },
	}
	if err := experiments.Reorder(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "sifting a pessimal schema order") {
		t.Fatalf("missing header:\n%s", buf.String())
	}
	if len(rows) != 3 {
		t.Fatalf("want check_before, check_after and sift rows, got %d: %+v", len(rows), rows)
	}
	byName := map[string]experiments.BenchRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	before, after := byName["check_before"], byName["check_after"]
	if before.Nodes == 0 || after.Nodes == 0 {
		t.Fatalf("rows missing node counts: %+v", rows)
	}
	if float64(after.Nodes) > 0.8*float64(before.Nodes) {
		t.Fatalf("sift saved only %d -> %d nodes, want >= 20%% drop", before.Nodes, after.Nodes)
	}
	if after.P95NS >= before.P95NS {
		t.Fatalf("p95 did not improve: %dns before, %dns after", before.P95NS, after.P95NS)
	}
	if byName["sift"].NsPerOp <= 0 {
		t.Fatalf("sift row missing pause time: %+v", byName["sift"])
	}
}

func TestParallelExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment")
	}
	var buf bytes.Buffer
	var rows []experiments.BenchRow
	cfg := experiments.Config{
		Out: &buf, Seed: 7, Parallel: 2,
		Record: func(r experiments.BenchRow) { rows = append(rows, r) },
	}
	if err := experiments.Parallel(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Parallel check throughput") {
		t.Fatalf("missing header:\n%s", buf.String())
	}
	if len(rows) != 2 {
		t.Fatalf("want one row per pool size (1, 2), got %d: %+v", len(rows), rows)
	}
	for _, r := range rows {
		if r.Experiment != "parallel" || r.NsPerOp <= 0 {
			t.Fatalf("bad row: %+v", r)
		}
		if _, ok := r.Params["replicas"]; !ok {
			t.Fatalf("row missing replicas param: %+v", r)
		}
	}
}
