package experiments_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// The experiment drivers are exercised end-to-end at reduced scale; the
// heavy ones are skipped under -short. Each must produce its header row and
// complete without strategy disagreements (the drivers cross-check BDD and
// SQL results internally and fail on mismatch).

func runExperiment(t *testing.T, name string, f func(experiments.Config) error, wantHeader string) {
	t.Helper()
	var buf bytes.Buffer
	cfg := experiments.Config{Out: &buf, Seed: 7}
	if err := f(cfg); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if !strings.Contains(buf.String(), wantHeader) {
		t.Fatalf("%s output missing %q:\n%s", name, wantHeader, buf.String())
	}
}

func TestThresholdExperiment(t *testing.T) {
	runExperiment(t, "threshold", experiments.Threshold, "threshold")
}

func TestFig5bExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment")
	}
	runExperiment(t, "fig5b", experiments.Fig5b, "Figure 5(b)")
}

func TestFig6bExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment")
	}
	runExperiment(t, "fig6b", experiments.Fig6b, "Figure 6(b)")
}

func TestFig6cExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment")
	}
	runExperiment(t, "fig6c", experiments.Fig6c, "Figure 6(c)")
}

func TestTable1Experiment(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment")
	}
	runExperiment(t, "table1", experiments.Table1, "Table 1")
}

func TestParallelExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment")
	}
	var buf bytes.Buffer
	var rows []experiments.BenchRow
	cfg := experiments.Config{
		Out: &buf, Seed: 7, Parallel: 2,
		Record: func(r experiments.BenchRow) { rows = append(rows, r) },
	}
	if err := experiments.Parallel(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Parallel check throughput") {
		t.Fatalf("missing header:\n%s", buf.String())
	}
	if len(rows) != 2 {
		t.Fatalf("want one row per pool size (1, 2), got %d: %+v", len(rows), rows)
	}
	for _, r := range rows {
		if r.Experiment != "parallel" || r.NsPerOp <= 0 {
			t.Fatalf("bad row: %+v", r)
		}
		if _, ok := r.Params["replicas"]; !ok {
			t.Fatalf("row missing replicas param: %+v", r)
		}
	}
}
