package experiments

// shard.go measures the horizontally sharded check path (internal/shard):
// /check-style throughput through an in-process scatter-gather coordinator
// as the shard count grows from 1 to 8 over a fixed customer relation.
// This experiment has no paper counterpart — the paper's engine is one
// kernel over one relation — but quantifies what partitioning buys on top
// of its data structures: each shard's kernel holds 1/N of the rows, so a
// fanned-out shard-local check does less BDD work per kernel and the N
// kernels evaluate concurrently.
//
// Every check uses a distinct ad-hoc constraint (fresh state/areacode
// constants), so kernel operation caches cannot short-circuit the repeated
// evaluations; the verdict multiset is compared across shard counts as a
// built-in correctness guard.

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/datagen"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/shard"
)

// shardCounts is the sweep; 1 is the single-kernel baseline (one worker
// owning the whole relation behind the same coordinator machinery).
var shardCounts = []int{1, 2, 4, 8}

// shardConstraints generates the ad-hoc check workload: each constraint
// restricts the areacodes allowed in one state, with fresh constants so no
// two checks share BDD cache entries. All decompose shard-local under a
// CUST.city partition: the city variable anchors every occurrence.
func shardConstraints(rng *rand.Rand, n int) ([]logic.Constraint, error) {
	cts := make([]logic.Constraint, n)
	for i := range cts {
		state := datagen.StateName(rng.Intn(datagen.NumStates))
		codes := make(map[string]bool)
		for len(codes) < 4 {
			codes[datagen.AreacodeName(rng.Intn(datagen.NumAreacodes))] = true
		}
		var set string
		for code := range codes {
			if set != "" {
				set += ", "
			}
			set += fmt.Sprintf("%q", code)
		}
		src := fmt.Sprintf(`forall a, n, c, st, z: CUST(a, n, c, st, z) and st = %q => a in {%s}`, state, set)
		f, err := logic.Parse(src)
		if err != nil {
			return nil, fmt.Errorf("shard workload constraint: %w", err)
		}
		cts[i] = logic.Constraint{Name: fmt.Sprintf("q%d", i), F: f}
	}
	return cts, nil
}

// Shard measures checks/sec through the coordinator at each shard count.
// Near-linear scaling toward the core count is the success criterion.
func Shard(cfg Config) error {
	w := cfg.out()
	tuples, checks := 20000, 240
	if cfg.Full {
		tuples, checks = 100000, 960
	}
	submitters := 8
	cts, err := shardConstraints(cfg.rng(950), checks)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "=== Sharded check throughput: scatter-gather coordinator (%d tuples, %d distinct checks, %d CPUs) ===\n",
		tuples, checks, runtime.NumCPU())
	fmt.Fprintf(w, "%-10s %14s %14s %10s %10s %10s\n", "shards", "total", "ns/check", "checks/s", "p95", "p99")
	var base float64
	var baseViolated int
	for _, n := range shardCounts {
		cat := relation.NewCatalog()
		if _, err := datagen.Customers(cat, "CUST", datagen.CustomerSpec{Tuples: tuples, NoiseRate: 0.001}, cfg.rng(951)); err != nil {
			return err
		}
		part, err := shard.NewPartitioner(cat, shard.Key{Table: "CUST", Column: "city"}, n, shard.HashMode, nil)
		if err != nil {
			return err
		}
		coord, err := shard.NewInProcess(cat, nil, part, shard.Options{NodeBudget: 8_000_000})
		if err != nil {
			return err
		}
		if plan := coord.PlanFor(cts[0]); plan.Kind != shard.PlanLocal {
			coord.Close()
			return fmt.Errorf("shard workload did not decompose local: %v", plan)
		}
		var hist obs.Histogram
		violated, rate, elapsed, err := shardRun(coord, submitters, cts, &hist)
		coord.Close()
		if err != nil {
			return err
		}
		if base == 0 {
			base, baseViolated = rate, violated
		} else if violated != baseViolated {
			return fmt.Errorf("verdicts drifted across shard counts: %d violated at %d shards, %d at %d",
				violated, n, baseViolated, shardCounts[0])
		}
		fmt.Fprintf(w, "%-10d %14v %14d %10.0f %10v %10v  (%.2fx)\n",
			n, elapsed.Round(time.Millisecond), elapsed.Nanoseconds()/int64(len(cts)), rate,
			hist.Quantile(0.95), hist.Quantile(0.99), rate/base)
		cfg.record(BenchRow{
			Experiment: "shard", Name: "check",
			Params: map[string]any{
				"shards": n, "checks": checks, "tuples": tuples, "submitters": submitters,
				"violated": violated, "gomaxprocs": runtime.GOMAXPROCS(0), "cpus": runtime.NumCPU(),
			},
			NsPerOp: elapsed.Nanoseconds() / int64(len(cts)),
		}.withPercentiles(&hist))
	}
	fmt.Fprintln(w, "expectation: throughput grows with the shard count until it reaches the core count")
	return nil
}

// shardRun drives the checks through the coordinator from `submitters`
// goroutines. Each worker kernel first serves one warmup check (index
// adoption and first-evaluation costs stay out of the timed region), then
// the distinct-constraint workload is split across submitters; each check's
// submission-to-merge latency feeds hist.
func shardRun(coord *shard.Coordinator, submitters int, cts []logic.Constraint, hist *obs.Histogram) (violated int, rate float64, elapsed time.Duration, err error) {
	ctx := context.Background()
	if _, err := coord.Check(ctx, cts[:1], 0, nil); err != nil {
		return 0, 0, 0, err
	}

	var nViolated atomic.Int64
	var firstErr atomic.Pointer[error]
	fail := func(e error) { firstErr.CompareAndSwap(nil, &e) }
	var wg sync.WaitGroup
	next := atomic.Int64{}
	start := time.Now()
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cts) {
					return
				}
				checkStart := time.Now()
				outs, err := coord.Check(ctx, cts[i:i+1], 0, nil)
				hist.Observe(time.Since(checkStart))
				if err != nil {
					fail(err)
					return
				}
				if outs[0].Err != "" {
					fail(fmt.Errorf("%s: %s", outs[0].Name, outs[0].Err))
					return
				}
				if outs[0].FellBack {
					fail(fmt.Errorf("%s: fell back: %s", outs[0].Name, outs[0].FallbackReason))
					return
				}
				if outs[0].Violated {
					nViolated.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed = time.Since(start)
	if e := firstErr.Load(); e != nil {
		return 0, 0, 0, *e
	}
	return int(nViolated.Load()), float64(len(cts)) / elapsed.Seconds(), elapsed, nil
}
