package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/logic"
	"repro/internal/sqlengine"
)

// table1.go reproduces Table 1 ("Variable Ordering Gain"): the five
// constraint queries Q1–Q5 on synthetic data, timed under the SQL baseline,
// BDD indices with a random variable ordering, and BDD indices with the
// Prob-Converge ordering. Paper: random ordering gains up to 2× over SQL,
// the optimized ordering 4–6×.

// Table1 runs the workload and prints the three rows.
func Table1(cfg Config) error {
	w := cfg.out()
	spec := datagen.Table1Spec{MainTuples: 50000, RefTuples: 10000}
	if cfg.Full {
		spec.MainTuples = 400000
		spec.RefTuples = 80000
	}
	fmt.Fprintf(w, "=== Table 1: variable ordering gain (REL: %d tuples, REF: %d) ===\n",
		spec.MainTuples, spec.RefTuples)
	workload, err := datagen.NewTable1Workload(spec, cfg.rng(500))
	if err != nil {
		return err
	}

	names := make([]string, len(workload.Constraints))
	for i, ct := range workload.Constraints {
		names[i] = fmt.Sprintf("Q%d", i+1)
		_ = ct
	}

	// SQL baseline.
	sqlTimes := make([]time.Duration, len(workload.Constraints))
	sqlViolated := make([]bool, len(workload.Constraints))
	res := logic.CatalogResolver{Catalog: workload.Catalog}
	for i, ct := range workload.Constraints {
		start := time.Now()
		q, err := sqlengine.Compile(ct, res)
		if err != nil {
			return fmt.Errorf("table1 %s: %w", names[i], err)
		}
		violated, _, err := q.Run()
		if err != nil {
			return fmt.Errorf("table1 %s: %w", names[i], err)
		}
		sqlTimes[i] = time.Since(start)
		sqlViolated[i] = violated
	}

	// BDD with random and with Prob-Converge orderings.
	run := func(method core.OrderingMethod) ([]time.Duration, error) {
		chk := core.New(workload.Catalog, core.Options{RandomSeed: cfg.Seed + int64(method)})
		for _, tbl := range []string{"REL", "REF"} {
			if _, err := chk.BuildIndex(tbl, tbl, nil, method); err != nil {
				return nil, err
			}
		}
		times := make([]time.Duration, len(workload.Constraints))
		for i, ct := range workload.Constraints {
			r := chk.CheckOne(ct)
			if r.Err != nil {
				return nil, fmt.Errorf("%s: %w", names[i], r.Err)
			}
			if r.FellBack {
				return nil, fmt.Errorf("%s: unexpected fallback: %v", names[i], r.FallbackReason)
			}
			if r.Violated != sqlViolated[i] {
				return nil, fmt.Errorf("%s: BDD (%v) and SQL (%v) disagree", names[i], r.Violated, sqlViolated[i])
			}
			times[i] = r.Duration
		}
		return times, nil
	}
	randTimes, err := run(core.OrderRandom)
	if err != nil {
		return err
	}
	optTimes, err := run(core.OrderProbConverge)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "%-16s", "approach")
	for _, n := range names {
		fmt.Fprintf(w, " %12s", n)
	}
	fmt.Fprintln(w)
	row := func(label string, times []time.Duration) {
		fmt.Fprintf(w, "%-16s", label)
		for _, t := range times {
			fmt.Fprintf(w, " %12v", t.Round(time.Microsecond))
		}
		fmt.Fprintln(w)
	}
	row("SQL", sqlTimes)
	row("BDD: random", randTimes)
	row("BDD: optimized", optTimes)
	for i, n := range names {
		for _, m := range []struct {
			approach string
			times    []time.Duration
		}{{"sql", sqlTimes}, {"bdd-random", randTimes}, {"bdd-optimized", optTimes}} {
			cfg.record(BenchRow{
				Experiment: "table1", Name: "check",
				Params:  map[string]any{"query": n, "approach": m.approach, "tuples": spec.MainTuples},
				NsPerOp: m.times[i].Nanoseconds(),
			})
		}
	}
	fmt.Fprintf(w, "%-16s", "opt gain vs SQL")
	for i := range names {
		fmt.Fprintf(w, " %11.1fx", float64(sqlTimes[i])/float64(optTimes[i]))
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "paper: SQL 1778-4234ms, random 1113-2347ms, optimized 240-1041ms (gain 4-6x)")
	return nil
}
