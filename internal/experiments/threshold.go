package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/bdd"
)

// threshold.go reproduces the §5.2 "Evaluating BDD overhead" table: the
// time to fill a node buffer of a given size with an inherently intractable
// construction, which bounds the overhead the abort-and-fall-back-to-SQL
// strategy pays when a constraint explodes. The paper picks a threshold of
// 10^6 nodes: ~3.5 seconds of overhead on their hardware, a 1-3% overhead
// relative to the 100-250 second SQL queries it falls back to.

// fillBudget builds random 3-CNF-style constraints over nVars variables
// until the kernel's node budget aborts, returning the time taken.
func fillBudget(budget int, rng *rand.Rand) (time.Duration, error) {
	const nVars = 96
	k := bdd.New(bdd.Config{Vars: nVars, NodeBudget: budget, CacheSize: 1 << 18})
	start := time.Now()
	f := bdd.True
	for i := 0; ; i++ {
		// One random XOR-of-3 clause; conjunctions of these blow up under
		// any static ordering.
		a, b, c := rng.Intn(nVars), rng.Intn(nVars), rng.Intn(nVars)
		k.TempKeep(f)
		clause := k.Xor(k.Xor(k.Var(a), k.Var(b)), k.Var(c))
		f = k.And(f, clause)
		if f == bdd.Invalid {
			// Errors surfacing from the kernel may wrap ErrBudget, so an
			// identity comparison would misclassify them as fatal.
			if errors.Is(k.Err(), bdd.ErrBudget) {
				return time.Since(start), nil
			}
			return 0, k.Err()
		}
		if i > 1<<20 {
			return 0, fmt.Errorf("threshold: budget %d never reached", budget)
		}
	}
}

// Threshold prints the buffer-fill time per node-budget size.
func Threshold(cfg Config) error {
	w := cfg.out()
	fmt.Fprintln(w, "=== §5.2 threshold table: time to fill a node buffer before aborting to SQL ===")
	budgets := []int{1_000, 100_000, 1_000_000, 10_000_000}
	if !cfg.Full {
		budgets = []int{1_000, 100_000, 1_000_000}
	}
	fmt.Fprintf(w, "%-14s %14s\n", "threshold", "fill time")
	for _, b := range budgets {
		d, err := fillBudget(b, cfg.rng(int64(b)))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-14d %14v\n", b, d.Round(time.Millisecond))
		cfg.record(BenchRow{
			Experiment: "threshold", Name: "fill",
			Params:  map[string]any{"budget": b},
			NsPerOp: d.Nanoseconds(), Nodes: b,
		})
	}
	fmt.Fprintln(w, "paper: 10^3→2.0s, 10^5→2.2s, 10^6→3.5s, 10^7→17s (2007 hardware);")
	fmt.Fprintln(w, "the chosen 10^6 threshold bounds the BDD overhead to a small constant")
	return nil
}
