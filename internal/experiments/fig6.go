package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/bdd"
	"repro/internal/fdd"
)

// fig6.go reproduces Figure 6: the three rewrite-rule comparisons at the
// BDD level — the equi-join rename rule (a), existential pull-up with
// AppEx (b), and universal push-down with AppAll (c).

// randomRelationBDD builds a BDD over the given blocks with approximately
// the requested node count, by adding random tuples until the size target
// is reached.
func randomRelationBDD(k *bdd.Kernel, doms []*fdd.Domain, targetNodes int, rng *rand.Rand) (bdd.Ref, error) {
	mark := k.TempMark()
	defer k.TempRelease(mark)
	f := bdd.False
	batch := 4096
	vals := make([]int, len(doms))
	prev := -1
	for {
		n := k.NodeCount(f)
		if n >= targetNodes {
			break
		}
		if n == prev {
			return bdd.Invalid, fmt.Errorf("experiments: BDD saturated at %d nodes before reaching %d; widen the variable space", n, targetNodes)
		}
		prev = n
		// Doubling batches keep the per-batch NodeCount scan amortized.
		if batch < 1<<17 {
			batch *= 2
		}
		rows := make([][]int, batch)
		for i := range rows {
			for j, d := range doms {
				vals[j] = rng.Intn(d.Size())
			}
			rows[i] = append([]int(nil), vals...)
		}
		g, err := fdd.Relation(doms, rows)
		if err != nil {
			return bdd.Invalid, err
		}
		nf := k.Or(f, g)
		if nf == bdd.Invalid {
			return bdd.Invalid, k.Err()
		}
		// Rolling temp root: only the newest accumulator stays pinned, so
		// superseded versions can be collected.
		k.TempRelease(mark)
		f = k.TempKeep(nf)
	}
	return f, nil
}

// fig6aSizes returns the |BDD(R1)| sweep.
func (c Config) fig6aSizes() []int {
	if c.Full {
		return []int{100000, 200000, 300000, 400000, 500000, 600000, 700000, 800000}
	}
	return []int{50000, 100000, 200000, 300000}
}

// Fig6a compares the two equi-join strategies of §4.2 while growing
// |BDD(R1)| and holding |BDD(R2)| ≈ 50k nodes: naive = conjoin equality
// BDDs on the join attributes and quantify them out; optimized = rename
// R2's attributes onto R1's and conjoin. Run for joins on one and two
// attributes. Paper: optimized is 2–3× faster.
func Fig6a(cfg Config) error {
	w := cfg.out()
	fmt.Fprintln(w, "=== Figure 6(a): equi-join rewrite, naive vs rename (|BDD(R2)| ≈ 50k) ===")
	fmt.Fprintf(w, "%-12s | %12s %12s %8s | %12s %12s %8s\n",
		"R1 nodes", "naive 1a", "rename 1a", "gain", "naive 2a", "rename 2a", "gain")
	for _, target := range cfg.fig6aSizes() {
		var cells [2][2]time.Duration // [attrs-1][naive|rename]
		for ai, attrs := range []int{1, 2} {
			k := bdd.New(bdd.Config{Vars: 0, CacheSize: 1 << 18})
			space := fdd.NewSpace(k)
			rng := cfg.rng(int64(target + attrs))
			// R1(a, b...) and R2(c..., d): join R1.b⋈R2.c on `attrs`
			// attributes. The equality-clause strategy must track every
			// joined bit between the two relations' blocks, so its cost
			// grows exponentially with the joined width: on one 10-bit
			// attribute it pays the paper's small-integer factor, on two it
			// degrades catastrophically — the §4.2 size argument taken to
			// its limit (the paper's structured synthetic relations kept it
			// at 2-3x even there).
			const domSize = 1 << 10
			var r1Doms, r2Doms []*fdd.Domain
			// Two non-join attributes: a single 20-bit relation saturates
			// (every tuple present, BDD collapses towards True) below the
			// larger node targets.
			r1Doms = append(r1Doms,
				space.NewDomain("a0", domSize), space.NewDomain("a1", domSize))
			var joinL, joinR []*fdd.Domain
			for i := 0; i < attrs; i++ {
				d := space.NewDomain(fmt.Sprintf("b%d", i), domSize)
				r1Doms = append(r1Doms, d)
				joinL = append(joinL, d)
			}
			for i := 0; i < attrs; i++ {
				d := space.NewDomain(fmt.Sprintf("c%d", i), domSize)
				r2Doms = append(r2Doms, d)
				joinR = append(joinR, d)
			}
			r2Doms = append(r2Doms, space.NewDomain("d", domSize))
			r1, err := randomRelationBDD(k, r1Doms, target, rng)
			if err != nil {
				return err
			}
			k.Protect(r1)
			r2, err := randomRelationBDD(k, r2Doms, 50000, rng)
			if err != nil {
				return err
			}
			k.Protect(r2)

			// Naive: R1 ∧ R2 ∧ (b = c), then ∃c. Flush caches first so the
			// two strategies start cold.
			k.GC()
			start := time.Now()
			eq := bdd.True
			for i := range joinL {
				k.TempKeep(eq)
				eq = k.And(eq, fdd.EqVar(joinL[i], joinR[i]))
			}
			k.TempKeep(eq)
			step := k.TempKeep(k.And(r1, r2))
			step = k.TempKeep(k.And(step, eq))
			naiveRes := fdd.Exists(step, joinR...)
			cells[ai][0] = time.Since(start)
			if naiveRes == bdd.Invalid {
				return k.Err()
			}
			k.Protect(naiveRes)
			k.TempRelease(0)

			// Optimized: rename R2's join block onto R1's, then ∧.
			k.GC()
			start = time.Now()
			m, err := fdd.ReplaceMap(joinR, joinL)
			if err != nil {
				return err
			}
			renamed := k.TempKeep(k.Replace(r2, m))
			renameRes := k.And(r1, renamed)
			cells[ai][1] = time.Since(start)
			if renameRes == bdd.Invalid {
				return k.Err()
			}
			k.TempRelease(0)
			k.Protect(renameRes)
			// Same join result up to the projected-away c attributes.
			l := k.TempKeep(fdd.Exists(naiveRes, joinL...))
			r := fdd.Exists(renameRes, joinL...)
			k.TempRelease(0)
			if l != r {
				return fmt.Errorf("fig6a: strategies disagree at %d nodes, %d attrs", target, attrs)
			}
			k.Unprotect(naiveRes)
			k.Unprotect(renameRes)
			k.Unprotect(r1)
			k.Unprotect(r2)
		}
		fmt.Fprintf(w, "%-12d | %12v %12v %8.1f | %12v %12v %8.1f\n",
			target,
			cells[0][0].Round(time.Microsecond), cells[0][1].Round(time.Microsecond),
			float64(cells[0][0])/float64(cells[0][1]),
			cells[1][0].Round(time.Microsecond), cells[1][1].Round(time.Microsecond),
			float64(cells[1][0])/float64(cells[1][1]))
	}
	fmt.Fprintln(w, "paper: the rename strategy is 2-3x faster than the equality-clause strategy")
	return nil
}

// fig6bcSizes returns the |P| sweep for the quantifier experiments.
func (c Config) fig6bcSizes() []int {
	if c.Full {
		return []int{200000, 400000, 600000, 800000, 1000000, 1200000, 1400000}
	}
	return []int{50000, 100000, 200000, 400000}
}

// fig6Setup builds two relation BDDs P and Q over a shared block layout
// (x, y, z) with |P| ≈ target and |Q| ≈ 50k nodes.
func fig6Setup(cfg Config, target int, seedOff int64, bottom bool) (*bdd.Kernel, bdd.Ref, bdd.Ref, bdd.Ref, error) {
	k := bdd.New(bdd.Config{Vars: 0, CacheSize: 1 << 18})
	space := fdd.NewSpace(k)
	rng := cfg.rng(int64(target) + seedOff)
	const domSize = 1 << 10
	x := space.NewDomain("x", domSize)
	y := space.NewDomain("y", domSize)
	z := space.NewDomain("z", domSize)
	doms := []*fdd.Domain{x, y, z}
	p, err := randomRelationBDD(k, doms, target, rng)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	k.Protect(p)
	q, err := randomRelationBDD(k, doms, 50000, rng)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	k.Protect(q)
	var cube bdd.Ref
	if bottom {
		// Quantifying the bottom block is the expensive case where the
		// fused AppEx pays off (Figure 6(b)).
		cube = k.Protect(z.Cube())
	} else {
		// Quantifying the top block makes ∀xφ small, the regime where
		// pushing ∀ down beats the fused evaluation (Figure 6(c)).
		_ = z
		cube = k.Protect(x.Cube())
	}
	return k, p, q, cube, nil
}

// Fig6b compares the two evaluations of ∃x φ1 ∨ ∃x φ2 (Equation 3):
// quantifying each side then disjoining, versus pulling the quantifier up
// and using the combined AppEx. Paper: the pulled-up AppEx form wins.
func Fig6b(cfg Config) error {
	w := cfg.out()
	fmt.Fprintln(w, "=== Figure 6(b): existential pull-up, Ex(P) OR Ex(Q) vs AppEx(P OR Q) ===")
	fmt.Fprintf(w, "%-12s | %14s %14s %8s\n", "P nodes", "Ex∨Ex", "AppEx(∨)", "gain")
	for _, target := range cfg.fig6bcSizes() {
		k, p, q, cube, err := fig6Setup(cfg, target, 63, true)
		if err != nil {
			return err
		}
		k.GC()
		start := time.Now()
		sep := k.Or(k.TempKeep(k.Exists(p, cube)), k.Exists(q, cube))
		tSep := time.Since(start)
		k.TempRelease(0)
		//lint:ignore tempmark the kernel is discarded at the end of this loop iteration, so the pin only needs to outlive the AppEx below
		k.Protect(sep)

		k.GC()
		start = time.Now()
		comb := k.AppEx(p, q, bdd.OpOr, cube)
		tComb := time.Since(start)
		if sep != comb {
			return fmt.Errorf("fig6b: strategies disagree at %d nodes", target)
		}
		fmt.Fprintf(w, "%-12d | %14v %14v %8.1f\n",
			target, tSep.Round(time.Microsecond), tComb.Round(time.Microsecond),
			float64(tSep)/float64(tComb))
	}
	fmt.Fprintln(w, "paper: the combined bdd_appex evaluation is faster; pull ∃ up across ∨")
	return nil
}

// Fig6c compares the two evaluations of ∀x(φ1 ∧ φ2) (Equation 4 / Rule 5):
// the combined AppAll on the conjunction versus pushing the quantifier down
// and conjoining ∀xφ1 ∧ ∀xφ2. Paper: push-down wins because ∀xφ is much
// smaller than φ.
func Fig6c(cfg Config) error {
	w := cfg.out()
	fmt.Fprintln(w, "=== Figure 6(c): universal push-down, AppAll(P AND Q) vs FA(P) AND FA(Q) ===")
	fmt.Fprintf(w, "%-12s | %14s %14s %8s\n", "P nodes", "AppAll(∧)", "FA∧FA", "gain")
	for _, target := range cfg.fig6bcSizes() {
		k, p, q, cube, err := fig6Setup(cfg, target, 87, false)
		if err != nil {
			return err
		}
		k.GC()
		start := time.Now()
		comb := k.AppAll(p, q, bdd.OpAnd, cube)
		tComb := time.Since(start)
		k.Protect(comb)

		k.GC()
		start = time.Now()
		push := k.And(k.TempKeep(k.Forall(p, cube)), k.Forall(q, cube))
		tPush := time.Since(start)
		k.TempRelease(0)
		if push != comb {
			return fmt.Errorf("fig6c: strategies disagree at %d nodes", target)
		}
		k.Unprotect(comb)
		fmt.Fprintf(w, "%-12d | %14v %14v %8.1f\n",
			target, tComb.Round(time.Microsecond), tPush.Round(time.Microsecond),
			float64(tComb)/float64(tPush))
	}
	fmt.Fprintln(w, "paper: pushing ∀ down across ∧ beats the combined evaluation of the conjunction")
	return nil
}
