package difftest

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/relation"
)

// brute.go is the referee: a direct model checker that evaluates the closed
// formula by exhaustive enumeration over the full interned dictionaries —
// no rewrites, no BDDs, no SQL plans. When the three production engines
// disagree, the brute verdict says which side is wrong; it is only feasible
// because the generator caps domain sizes and variable counts.

// bruteHolds reports whether the analyzed sentence holds on the catalog's
// current contents. Quantifiers range over every interned dictionary code,
// matching the engines' semantics (values interned but absent from all rows
// are still in a variable's range).
func bruteHolds(an *logic.Analysis) bool {
	var eval func(f logic.Formula, b map[string]int32) bool
	termVal := func(t logic.Term, dom *relation.Domain, b map[string]int32) (int32, bool) {
		switch x := t.(type) {
		case logic.Var:
			return b[x.Name], true
		case logic.Const:
			if dom == nil {
				return 0, false
			}
			return dom.Code(x.Value)
		}
		panic(fmt.Sprintf("difftest: bad term %T", t))
	}
	eval = func(f logic.Formula, b map[string]int32) bool {
		switch g := f.(type) {
		case logic.Truth:
			return g.Value
		case logic.Pred:
			bind := an.Preds[g.Table]
			for r := 0; r < bind.Table.Len(); r++ {
				row := bind.Table.Row(r)
				ok := true
				for i, arg := range g.Args {
					col := bind.Cols[i]
					v, present := termVal(arg, bind.Table.ColumnDomain(col), b)
					if !present || row[col] != v {
						ok = false
						break
					}
				}
				if ok {
					return true
				}
			}
			return false
		case logic.Eq:
			dom := domOfTerms(an, g.L, g.R)
			lv, lok := termVal(g.L, dom, b)
			rv, rok := termVal(g.R, dom, b)
			return lok && rok && lv == rv
		case logic.Neq:
			dom := domOfTerms(an, g.L, g.R)
			lv, lok := termVal(g.L, dom, b)
			rv, rok := termVal(g.R, dom, b)
			if !lok || !rok {
				return true // an unknown constant differs from everything
			}
			return lv != rv
		case logic.In:
			v := g.T.(logic.Var)
			dom := an.Domain(v.Name)
			for _, s := range g.Values {
				if c, ok := dom.Code(s); ok && c == b[v.Name] {
					return true
				}
			}
			return false
		case logic.Not:
			return !eval(g.F, b)
		case logic.And:
			return eval(g.L, b) && eval(g.R, b)
		case logic.Or:
			return eval(g.L, b) || eval(g.R, b)
		case logic.Implies:
			return !eval(g.L, b) || eval(g.R, b)
		case logic.Quant:
			var rec func(i int) bool
			rec = func(i int) bool {
				if i == len(g.Vars) {
					return eval(g.F, b)
				}
				v := g.Vars[i]
				dom := an.Domain(v)
				saved, had := b[v]
				defer func() {
					if had {
						b[v] = saved
					} else {
						delete(b, v)
					}
				}()
				for c := 0; c < dom.Size(); c++ {
					b[v] = int32(c)
					r := rec(i + 1)
					if g.All && !r {
						return false
					}
					if !g.All && r {
						return true
					}
				}
				return g.All
			}
			return rec(0)
		default:
			panic(fmt.Sprintf("difftest: bad formula %T", f))
		}
	}
	return eval(an.F, map[string]int32{})
}

func domOfTerms(an *logic.Analysis, l, r logic.Term) *relation.Domain {
	if v, ok := l.(logic.Var); ok {
		if d := an.Domain(v.Name); d != nil {
			return d
		}
	}
	if v, ok := r.(logic.Var); ok {
		if d := an.Domain(v.Name); d != nil {
			return d
		}
	}
	return nil
}
