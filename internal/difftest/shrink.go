package difftest

import (
	"repro/internal/logic"
)

// shrink.go greedily minimizes a failing case while preserving the oracle
// mismatch. The shrinker only accepts a candidate when RunCase reproduces a
// mismatch *without* a hard error — a candidate that merely breaks the
// harness (dangling table reference, inapplicable delete) is rejected, so
// the minimized repro is always a well-formed case. Passes repeat until a
// fixed point or the run budget is exhausted:
//
//	1. keep only one constraint,
//	2. drop update batches, then individual update operations,
//	3. drop whole tables and whole domains,
//	4. delta-debug the rows of every table,
//	5. shrink the constraint formula structurally (subformula → child,
//	   subformula → true/false, fewer quantified variables, smaller
//	   membership sets),
//	6. drop individual domain values.

// shrinkBudget caps RunCase invocations per Shrink call; each run rebuilds
// catalogs and kernels, so the cap bounds shrink time on pathological cases.
const shrinkBudget = 3000

type shrinker struct {
	runs int
	// kind pins the Mismatch.Kind of the original failure: a candidate only
	// counts as reproducing when it fails the same way, so e.g. an
	// "sql-error" case cannot drift into an unrelated "verdict" mismatch
	// mid-shrink.
	kind string
}

// Shrink returns a minimized copy of a failing case. If c does not actually
// fail (or fails only with a hard error), it is returned unchanged.
func Shrink(c *Case) *Case {
	s := &shrinker{}
	cur := c.clone()
	mm, err := RunCase(cur)
	if err != nil || mm == nil {
		return cur
	}
	s.kind = mm.Kind
	for changed := true; changed && s.runs < shrinkBudget; {
		changed = false
		changed = s.shrinkConstraints(&cur) || changed
		changed = s.shrinkUpdates(&cur) || changed
		changed = s.shrinkTables(&cur) || changed
		changed = s.shrinkRows(&cur) || changed
		changed = s.shrinkFormula(&cur) || changed
		changed = s.shrinkDomainValues(&cur) || changed
	}
	return cur
}

func (s *shrinker) fails(c *Case) bool {
	if s.runs >= shrinkBudget {
		return false
	}
	s.runs++
	mm, err := RunCase(c)
	return err == nil && mm != nil && mm.Kind == s.kind
}

// accept swaps *cur for cand when cand still reproduces.
func (s *shrinker) accept(cur **Case, cand *Case) bool {
	if s.fails(cand) {
		*cur = cand
		return true
	}
	return false
}

func (s *shrinker) shrinkConstraints(cur **Case) bool {
	changed := false
	if len((*cur).Constraints) > 1 {
		for _, ct := range (*cur).Constraints {
			cand := (*cur).clone()
			cand.Constraints = []ConstraintSpec{ct}
			if s.accept(cur, cand) {
				changed = true
				break
			}
		}
	}
	return changed
}

func (s *shrinker) shrinkUpdates(cur **Case) bool {
	changed := false
	for i := 0; i < len((*cur).Updates); {
		cand := (*cur).clone()
		cand.Updates = append(cand.Updates[:i], cand.Updates[i+1:]...)
		if s.accept(cur, cand) {
			changed = true
		} else {
			i++
		}
	}
	for bi := 0; bi < len((*cur).Updates); bi++ {
		for i := 0; i < len((*cur).Updates[bi]); {
			cand := (*cur).clone()
			cand.Updates[bi] = append(cand.Updates[bi][:i], cand.Updates[bi][i+1:]...)
			if s.accept(cur, cand) {
				changed = true
			} else {
				i++
			}
		}
	}
	return changed
}

func (s *shrinker) shrinkTables(cur **Case) bool {
	changed := false
	for i := 0; i < len((*cur).Tables); {
		cand := (*cur).clone()
		cand.Tables = append(cand.Tables[:i], cand.Tables[i+1:]...)
		if s.accept(cur, cand) {
			changed = true
		} else {
			i++
		}
	}
	for i := 0; i < len((*cur).Domains); {
		cand := (*cur).clone()
		cand.Domains = append(cand.Domains[:i], cand.Domains[i+1:]...)
		if s.accept(cur, cand) {
			changed = true
		} else {
			i++
		}
	}
	return changed
}

// shrinkRows is ddmin per table: remove progressively smaller chunks of
// rows while the mismatch persists.
func (s *shrinker) shrinkRows(cur **Case) bool {
	changed := false
	for ti := range (*cur).Tables {
		chunk := (len((*cur).Tables[ti].Rows) + 1) / 2
		for chunk >= 1 {
			removed := false
			for start := 0; start < len((*cur).Tables[ti].Rows); {
				rows := (*cur).Tables[ti].Rows
				end := start + chunk
				if end > len(rows) {
					end = len(rows)
				}
				cand := (*cur).clone()
				cand.Tables[ti].Rows = append(append([][]string(nil), rows[:start]...), rows[end:]...)
				if s.accept(cur, cand) {
					changed, removed = true, true
					// keep start: the next chunk shifted into this slot
				} else {
					start = end
				}
			}
			if !removed && chunk == 1 {
				break
			}
			if !removed {
				chunk /= 2
			}
		}
	}
	return changed
}

func (s *shrinker) shrinkFormula(cur **Case) bool {
	changed := false
	for ci := range (*cur).Constraints {
		for {
			f, err := logic.Parse((*cur).Constraints[ci].Source)
			if err != nil {
				break // unparseable source never reproduces; fails() guards anyway
			}
			reduced := false
			for _, g := range formulaShrinks(f) {
				cand := (*cur).clone()
				cand.Constraints[ci].Source = g.String()
				if s.accept(cur, cand) {
					changed, reduced = true, true
					break
				}
			}
			if !reduced {
				break
			}
		}
	}
	return changed
}

func (s *shrinker) shrinkDomainValues(cur **Case) bool {
	changed := false
	for di := range (*cur).Domains {
		for vi := 0; vi < len((*cur).Domains[di].Values); {
			vals := (*cur).Domains[di].Values
			cand := (*cur).clone()
			cand.Domains[di].Values = append(append([]string(nil), vals[:vi]...), vals[vi+1:]...)
			if s.accept(cur, cand) {
				changed = true
			} else {
				vi++
			}
		}
	}
	return changed
}

// formulaShrinks enumerates one-step structural reductions of a formula:
// replace any subformula by a constant or by one of its children, drop
// quantified variables, and shrink membership sets. Each result is strictly
// smaller, so repeated application terminates.
func formulaShrinks(f logic.Formula) []logic.Formula {
	var out []logic.Formula
	if _, ok := f.(logic.Truth); !ok {
		out = append(out, logic.Truth{Value: true}, logic.Truth{Value: false})
	}
	switch g := f.(type) {
	case logic.Not:
		out = append(out, g.F)
		for _, sf := range formulaShrinks(g.F) {
			out = append(out, logic.Not{F: sf})
		}
	case logic.And:
		out = append(out, g.L, g.R)
		for _, sf := range formulaShrinks(g.L) {
			out = append(out, logic.And{L: sf, R: g.R})
		}
		for _, sf := range formulaShrinks(g.R) {
			out = append(out, logic.And{L: g.L, R: sf})
		}
	case logic.Or:
		out = append(out, g.L, g.R)
		for _, sf := range formulaShrinks(g.L) {
			out = append(out, logic.Or{L: sf, R: g.R})
		}
		for _, sf := range formulaShrinks(g.R) {
			out = append(out, logic.Or{L: g.L, R: sf})
		}
	case logic.Implies:
		out = append(out, g.L, g.R)
		for _, sf := range formulaShrinks(g.L) {
			out = append(out, logic.Implies{L: sf, R: g.R})
		}
		for _, sf := range formulaShrinks(g.R) {
			out = append(out, logic.Implies{L: g.L, R: sf})
		}
	case logic.Quant:
		out = append(out, g.F)
		if len(g.Vars) > 1 {
			for i := range g.Vars {
				vs := append(append([]string(nil), g.Vars[:i]...), g.Vars[i+1:]...)
				out = append(out, logic.Quant{All: g.All, Vars: vs, F: g.F})
			}
		}
		for _, sf := range formulaShrinks(g.F) {
			out = append(out, logic.Quant{All: g.All, Vars: g.Vars, F: sf})
		}
	case logic.In:
		if len(g.Values) > 1 {
			for i := range g.Values {
				vs := append(append([]string(nil), g.Values[:i]...), g.Values[i+1:]...)
				out = append(out, logic.In{T: g.T, Values: vs})
			}
		}
	}
	return out
}
