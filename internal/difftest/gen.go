package difftest

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/logic"
	"repro/internal/relation"
)

// gen.go generates random cases: a random schema of shared-domain tables
// (plus, sometimes, a product-structured table from internal/datagen), random
// contents with skew/empty/singleton/duplicate edge cases, random well-typed
// constraints over the full grammar logic.Parse accepts (quantifier nesting,
// negation, implication, comparisons, membership sets, constants both known
// and unknown to the dictionaries, multi-table joins through shared domains),
// and random update batches that stay applicable by tracking a shadow copy of
// every table.

// Generator size bounds. Domains stay small so the brute-force referee and
// exhaustive witness enumeration stay cheap, and distinct variables per
// constraint are capped so active-domain products stay tractable.
const (
	constraintsPerCase = 8
	maxVarsPerFormula  = 5
	genAttempts        = 60
	maxRowsPerTable    = 60
)

type caseGen struct {
	ch  Chooser
	c   *Case
	cat *relation.Catalog // built once for Analyze during generation
	// pool is the per-constraint variable pool: name -> domain name.
	pool []poolVar
}

type poolVar struct {
	name, domain string
}

// GenerateCase produces a complete random case from the chooser. It is total
// and deterministic in the chooser's choices: any choice stream yields a
// valid case (the fuzz target feeds it arbitrary bytes).
func GenerateCase(ch Chooser) *Case {
	g := &caseGen{ch: ch, c: &Case{}}
	g.c.Seed = int64(ch.Intn(1 << 20))
	g.c.Ordering = []string{"prob", "maxinf", "random", "schema"}[ch.Intn(4)]
	g.genDomains()
	g.genTables()
	if ch.Intn(3) == 0 {
		g.genProdTable()
	}
	cat, err := g.c.Build()
	if err != nil {
		// The generator constructs only well-formed specs; a build failure is
		// a harness bug, not an input property.
		panic(fmt.Sprintf("difftest: generated case does not build: %v", err))
	}
	g.cat = cat
	for i := 0; i < constraintsPerCase; i++ {
		g.c.Constraints = append(g.c.Constraints, ConstraintSpec{
			Name:   fmt.Sprintf("c%d", i),
			Source: g.genConstraint().String(),
		})
	}
	g.genUpdates()
	return g.c
}

func (g *caseGen) genDomains() {
	nd := 2 + g.ch.Intn(3) // 2..4
	for i := 0; i < nd; i++ {
		size := 2 + g.ch.Intn(5) // 2..6
		vals := make([]string, size)
		for j := range vals {
			vals[j] = fmt.Sprintf("D%d_%d", i, j)
		}
		g.c.Domains = append(g.c.Domains, DomainSpec{Name: fmt.Sprintf("D%d", i), Values: vals})
	}
}

func (g *caseGen) genTables() {
	nt := 2 + g.ch.Intn(3) // 2..4
	for ti := 0; ti < nt; ti++ {
		nc := 1 + g.ch.Intn(3) // 1..3
		ts := TableSpec{Name: fmt.Sprintf("T%d", ti)}
		for ci := 0; ci < nc; ci++ {
			d := g.c.Domains[g.ch.Intn(len(g.c.Domains))]
			ts.Cols = append(ts.Cols, ColSpec{Name: fmt.Sprintf("c%d", ci), Domain: d.Name})
		}
		g.fillTable(&ts)
		g.c.Tables = append(g.c.Tables, ts)
	}
}

// fillTable picks a content profile: empty tables, singletons, sparse and
// medium random fills, and skewed fills with duplicate tuples (duplicates
// exercise the bag-vs-set boundary between tables and indices, in particular
// the still-present check on incremental deletes).
func (g *caseGen) fillTable(ts *TableSpec) {
	domVal := func(name string, code int) string {
		for _, d := range g.c.Domains {
			if d.Name == name {
				return d.Values[code%len(d.Values)]
			}
		}
		panic("difftest: unknown domain " + name)
	}
	randomRow := func(skewed bool) []string {
		row := make([]string, len(ts.Cols))
		for i, c := range ts.Cols {
			size := g.domainSize(c.Domain)
			code := g.ch.Intn(size)
			if skewed {
				// Favor low codes: the minimum of two draws halves the mean,
				// concentrating mass like the paper's skewed workloads.
				if c2 := g.ch.Intn(size); c2 < code {
					code = c2
				}
			}
			row[i] = domVal(c.Domain, code)
		}
		return row
	}
	switch g.ch.Intn(6) {
	case 0: // empty
	case 1: // singleton
		ts.Rows = append(ts.Rows, randomRow(false))
	case 2, 3: // random fill
		n := 1 + g.ch.Intn(maxRowsPerTable)
		for i := 0; i < n; i++ {
			ts.Rows = append(ts.Rows, randomRow(false))
		}
	case 4: // skewed fill (duplicates likely)
		n := 5 + g.ch.Intn(maxRowsPerTable-5)
		for i := 0; i < n; i++ {
			ts.Rows = append(ts.Rows, randomRow(true))
		}
	default: // dense: every tuple of the (small) domain product w.p. 1/2
		total := 1
		for _, c := range ts.Cols {
			total *= g.domainSize(c.Domain)
		}
		if total > 4*maxRowsPerTable {
			n := 1 + g.ch.Intn(maxRowsPerTable)
			for i := 0; i < n; i++ {
				ts.Rows = append(ts.Rows, randomRow(false))
			}
			return
		}
		for t := 0; t < total; t++ {
			if g.ch.Intn(2) == 0 {
				continue
			}
			row := make([]string, len(ts.Cols))
			rem := t
			for i, c := range ts.Cols {
				size := g.domainSize(c.Domain)
				row[i] = domVal(c.Domain, rem%size)
				rem /= size
			}
			ts.Rows = append(ts.Rows, row)
		}
	}
}

func (g *caseGen) domainSize(name string) int {
	for _, d := range g.c.Domains {
		if d.Name == name {
			return len(d.Values)
		}
	}
	panic("difftest: unknown domain " + name)
}

// genProdTable layers a table from the paper's k-PROD generator family on
// top of the schema: datagen.KProd materializes it in a scratch catalog and
// the rows are copied into the case spec, so the case stays self-describing.
func (g *caseGen) genProdTable() {
	spec := datagen.ProdSpec{
		Products: g.ch.Intn(3),       // 0 = RANDOM family
		Attrs:    2 + g.ch.Intn(2),   // 2..3
		Tuples:   10 + g.ch.Intn(40), // ~10..50
		DomSize:  2 + g.ch.Intn(5),   // 2..6
	}
	scratch := relation.NewCatalog()
	rng := rand.New(rand.NewSource(int64(g.ch.Intn(1 << 20))))
	t, err := datagen.KProd(scratch, "KP", spec, rng)
	if err != nil {
		panic(fmt.Sprintf("difftest: KProd: %v", err))
	}
	ts := TableSpec{Name: "KP"}
	for i := 0; i < t.NumCols(); i++ {
		dom := DomainSpec{Name: fmt.Sprintf("KPa%d", i)}
		src := t.ColumnDomain(i)
		for code := 0; code < src.Size(); code++ {
			dom.Values = append(dom.Values, src.Value(int32(code)))
		}
		g.c.Domains = append(g.c.Domains, dom)
		ts.Cols = append(ts.Cols, ColSpec{Name: fmt.Sprintf("a%d", i), Domain: dom.Name})
	}
	n := t.Len()
	if n > 2*maxRowsPerTable {
		n = 2 * maxRowsPerTable
	}
	for r := 0; r < n; r++ {
		row := make([]string, t.NumCols())
		for c := range row {
			row[c] = t.Value(r, c)
		}
		ts.Rows = append(ts.Rows, row)
	}
	g.c.Tables = append(g.c.Tables, ts)
}

// genConstraint draws random formulas until one passes Analyze (the grammar
// admits range-unbounded variables and cross-domain comparisons, which
// Analyze rejects by design), falling back to a trivially well-typed
// predicate scan when the attempt budget runs out.
func (g *caseGen) genConstraint() logic.Formula {
	for try := 0; try < genAttempts; try++ {
		g.newPool()
		f := g.formula(2 + g.ch.Intn(2))
		if _, err := logic.Analyze(f, logic.CatalogResolver{Catalog: g.cat}); err == nil {
			return f
		}
	}
	// Fallback: every column of the first table bound to a distinct fresh
	// variable, closed universally by Analyze.
	ts := g.c.Tables[0]
	args := make([]logic.Term, len(ts.Cols))
	for i := range args {
		args[i] = logic.Var{Name: fmt.Sprintf("f%c", 'a'+i)}
	}
	return logic.Pred{Table: ts.Name, Args: args}
}

// newPool draws the constraint's variable pool: a small set of typed
// variables, capped so brute-force referee cost (domain-size ^ variables)
// stays bounded.
func (g *caseGen) newPool() {
	n := 2 + g.ch.Intn(maxVarsPerFormula-1) // 2..5
	g.pool = g.pool[:0]
	for i := 0; i < n; i++ {
		d := g.c.Domains[g.ch.Intn(len(g.c.Domains))]
		g.pool = append(g.pool, poolVar{name: fmt.Sprintf("v%c", 'a'+i), domain: d.Name})
	}
}

// varOf picks a pool variable of the given domain, or "" if none exists.
func (g *caseGen) varOf(dom string) string {
	start := g.ch.Intn(len(g.pool))
	for i := 0; i < len(g.pool); i++ {
		v := g.pool[(start+i)%len(g.pool)]
		if v.domain == dom {
			return v.name
		}
	}
	return ""
}

// knownValue picks a value interned in the domain; unknownValue returns a
// constant no dictionary has ever seen.
func (g *caseGen) knownValue(dom string) string {
	for _, d := range g.c.Domains {
		if d.Name == dom {
			return d.Values[g.ch.Intn(len(d.Values))]
		}
	}
	panic("difftest: unknown domain " + dom)
}

func (g *caseGen) unknownValue() string {
	return fmt.Sprintf("qq_unknown%d", g.ch.Intn(3))
}

func (g *caseGen) term(dom string) logic.Term {
	r := g.ch.Intn(10)
	if r < 6 {
		if v := g.varOf(dom); v != "" {
			return logic.Var{Name: v}
		}
	}
	if r < 9 {
		return logic.Const{Value: g.knownValue(dom)}
	}
	return logic.Const{Value: g.unknownValue()}
}

func (g *caseGen) atom() logic.Formula {
	switch r := g.ch.Intn(10); {
	case r < 6: // predicate over a random table
		ts := g.c.Tables[g.ch.Intn(len(g.c.Tables))]
		args := make([]logic.Term, len(ts.Cols))
		for i, c := range ts.Cols {
			args[i] = g.term(c.Domain)
		}
		return logic.Pred{Table: ts.Name, Args: args}
	case r < 8: // comparison between typed terms
		v := g.pool[g.ch.Intn(len(g.pool))]
		l := logic.Var{Name: v.name}
		rterm := g.term(v.domain)
		if g.ch.Intn(2) == 0 {
			return logic.Eq{L: l, R: rterm}
		}
		return logic.Neq{L: l, R: rterm}
	case r < 9: // membership set, mixing known and unknown values
		v := g.pool[g.ch.Intn(len(g.pool))]
		n := 1 + g.ch.Intn(3)
		vals := make([]string, n)
		for i := range vals {
			if g.ch.Intn(4) == 0 {
				vals[i] = g.unknownValue()
			} else {
				vals[i] = g.knownValue(v.domain)
			}
		}
		return logic.In{T: logic.Var{Name: v.name}, Values: vals}
	default:
		return logic.Truth{Value: g.ch.Intn(2) == 0}
	}
}

func (g *caseGen) formula(depth int) logic.Formula {
	if depth <= 0 {
		return g.atom()
	}
	switch g.ch.Intn(10) {
	case 0:
		return logic.Not{F: g.formula(depth - 1)}
	case 1, 2:
		return logic.And{L: g.formula(depth - 1), R: g.formula(depth - 1)}
	case 3, 4:
		return logic.Or{L: g.formula(depth - 1), R: g.formula(depth - 1)}
	case 5:
		return logic.Implies{L: g.formula(depth - 1), R: g.formula(depth - 1)}
	case 6, 7, 8:
		n := 1 + g.ch.Intn(2)
		seen := map[string]bool{}
		var vars []string
		for i := 0; i < n; i++ {
			v := g.pool[g.ch.Intn(len(g.pool))].name
			if !seen[v] {
				seen[v] = true
				vars = append(vars, v)
			}
		}
		return logic.Quant{All: g.ch.Intn(2) == 0, Vars: vars, F: g.formula(depth - 1)}
	default:
		return g.atom()
	}
}

// genUpdates draws update batches that are applicable by construction: a
// shadow copy of every table tracks the bag contents so deletes always name
// a live tuple and inserts stay within the interned dictionaries (growing a
// dictionary would invalidate the fixed-width index blocks — that failure
// mode has its own unit tests in internal/index).
func (g *caseGen) genUpdates() {
	shadow := make(map[string][][]string, len(g.c.Tables))
	for _, ts := range g.c.Tables {
		rows := make([][]string, len(ts.Rows))
		for i, r := range ts.Rows {
			rows[i] = append([]string(nil), r...)
		}
		shadow[ts.Name] = rows
	}
	nb := g.ch.Intn(3) // 0..2 batches
	for b := 0; b < nb; b++ {
		n := 1 + g.ch.Intn(4)
		var batch []core.Update
		for i := 0; i < n; i++ {
			ts := g.c.Tables[g.ch.Intn(len(g.c.Tables))]
			if g.ch.Intn(2) == 0 && len(shadow[ts.Name]) > 0 { // delete
				idx := g.ch.Intn(len(shadow[ts.Name]))
				row := shadow[ts.Name][idx]
				shadow[ts.Name] = append(shadow[ts.Name][:idx], shadow[ts.Name][idx+1:]...)
				batch = append(batch, core.Update{Table: ts.Name, Op: core.UpdateDelete, Values: row})
				continue
			}
			row := make([]string, len(ts.Cols))
			for ci, c := range ts.Cols {
				row[ci] = g.knownValue(c.Domain)
			}
			shadow[ts.Name] = append(shadow[ts.Name], row)
			batch = append(batch, core.Update{Table: ts.Name, Op: core.UpdateInsert, Values: row})
		}
		g.c.Updates = append(g.c.Updates, batch)
	}
}
