package difftest

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/sqlengine"
)

// oracle.go runs one case through the three production evaluation paths and
// compares them:
//
//   - primary: the BDD evaluator (plus FD fast path) on the kernel that owns
//     the live indices, node budget unlimited so nothing degrades to SQL;
//   - sql: the sqlengine.Compile violation query on the same catalog — the
//     baseline the paper's indices claim to replace exactly;
//   - replica: a fresh checker adopting the primary's index roots through
//     core.SnapshotIndices / bdd.CopyTo, checked with the SQL fallback
//     disabled so only the copied BDDs decide.
//
// Verdicts must agree three ways on every constraint; when the constraint is
// a violated validity check, the witness sets must agree too (primary vs
// replica exactly; primary vs sql after projecting onto the variables both
// sides bind, since prenexing can fold deeper universals into the BDD's
// leading block that the SQL compiler leaves quantified). Each update batch
// is applied through the incremental maintenance path and the whole
// comparison repeats against a freshly frozen replica.

// witnessLimit bounds witness enumeration; a truncated enumeration is not
// compared (the two engines may truncate different subsets).
const witnessLimit = 10000

// DebugChecks makes the harness enable bdd.Kernel runtime Ref validation
// (Config.DebugChecks) on the primary and on every frozen replica, so a soak
// run doubles as a hunt for use-after-GC and cross-kernel handle bugs. The
// difftest suite's -debugchecks flag sets it.
var DebugChecks bool

// ForceReorder makes RunCase run a full sifting pass (core.Checker.Reorder)
// on the primary kernel after the initial index build and again after every
// update batch — far more often than the production growth trigger ever
// would — so every three-way comparison, every replica freeze and every
// witness enumeration runs against a freshly reordered kernel. Any verdict
// or witness divergence then implicates the reordering engine. The difftest
// suite's -reorder flag sets it.
var ForceReorder bool

// Mismatch describes one oracle disagreement. It is a test failure in
// waiting: the shrinker minimizes the case around it and the corpus writer
// persists it.
type Mismatch struct {
	// Step is 0 for the initial load, i for the state after update batch i
	// (1-based).
	Step int
	// Constraint names the disagreeing constraint within the case.
	Constraint string
	// Kind classifies the disagreement: "verdict" and "witnesses" for
	// value-level divergence, or "primary-error" / "sql-error" /
	// "replica-error" / "witness-error" when one engine fails outright on a
	// constraint that analyzes cleanly against the schema (the other
	// engines' ability to answer makes the failure itself a divergence).
	Kind string
	// Detail is a human-readable account, including the brute-force
	// referee's verdict on who is wrong.
	Detail string
}

func (m *Mismatch) String() string {
	return fmt.Sprintf("step %d, constraint %s: %s mismatch: %s", m.Step, m.Constraint, m.Kind, m.Detail)
}

// RunCase builds the case and runs the full three-way comparison, including
// the update path. It returns a non-nil *Mismatch if the oracles disagree,
// and a non-nil error only for hard harness failures (unparseable
// constraint, index build failure, evaluator error) — the distinction
// matters to the shrinker, which must not mistake a candidate that broke
// the harness for one that still reproduces a divergence.
func RunCase(c *Case) (*Mismatch, error) {
	method, err := core.ParseOrderingMethod(c.Ordering)
	if err != nil {
		return nil, fmt.Errorf("difftest: %w", err)
	}
	cat, err := c.Build()
	if err != nil {
		return nil, err
	}
	// An empty dictionary cannot become a BDD block (fdd panics on size-0
	// domains); the generator always interns values, but shrink candidates
	// can strip a domain bare. Reject such cases as hard errors.
	for _, ts := range c.Tables {
		t := cat.Table(ts.Name)
		for i := 0; i < t.NumCols(); i++ {
			if t.ColumnDomain(i).Size() == 0 {
				return nil, fmt.Errorf("difftest: table %s column %d has an empty dictionary", ts.Name, i)
			}
		}
	}
	primary := core.New(cat, core.Options{NodeBudget: -1, RandomSeed: c.Seed})
	if DebugChecks {
		primary.Store().Kernel().SetDebugChecks(true)
	}
	for _, ts := range c.Tables {
		// The index carries the table's name: the evaluator resolves a
		// predicate to the index of the same name, and nil cols means the
		// full column set.
		if _, err := primary.BuildIndex(ts.Name, ts.Name, nil, method); err != nil {
			return nil, fmt.Errorf("difftest: building index for %s: %w", ts.Name, err)
		}
	}
	cts := make([]logic.Constraint, len(c.Constraints))
	for i, cs := range c.Constraints {
		f, err := logic.Parse(cs.Source)
		if err != nil {
			return nil, fmt.Errorf("difftest: parsing %s: %w", cs.Name, err)
		}
		cts[i] = logic.Constraint{Name: cs.Name, F: f}
	}
	if ForceReorder {
		primary.Reorder(bdd.ReorderOptions{})
	}
	if mm, err := checkAll(primary, cts, 0); mm != nil || err != nil {
		return mm, err
	}
	var fol *followerOracle
	if FollowerSoak {
		if fol, err = newFollowerOracle(primary, cts); err != nil {
			return nil, err
		}
		defer fol.close()
		if mm, err := fol.check(primary, cts, 0); mm != nil || err != nil {
			return mm, err
		}
	}
	var shardO *shardOracle
	if ShardSoak > 0 {
		if shardO, err = newShardOracle(c, cts); err != nil {
			return nil, err
		}
		defer shardO.close()
		if mm, err := shardO.check(primary, 0); mm != nil || err != nil {
			return mm, err
		}
	}
	for i, batch := range c.Updates {
		if _, err := primary.Apply(batch); err != nil {
			return nil, fmt.Errorf("difftest: applying batch %d: %w", i+1, err)
		}
		if ForceReorder {
			primary.Reorder(bdd.ReorderOptions{})
		}
		if mm, err := checkAll(primary, cts, i+1); mm != nil || err != nil {
			return mm, err
		}
		if fol != nil {
			// Ship the batch the way the leader's WAL would carry it (epoch
			// 1 is the bootstrap snapshot; batch i+1 lands at epoch i+2) and
			// re-prove the follower against the primary.
			if err := fol.ship(uint64(i)+2, batch); err != nil {
				return nil, fmt.Errorf("difftest: shipping batch %d: %w", i+1, err)
			}
			if mm, err := fol.check(primary, cts, i+1); mm != nil || err != nil {
				return mm, err
			}
		}
		if shardO != nil {
			// Route the same batch through the coordinator's fan-out and
			// re-prove the sharded answers against the primary.
			if err := shardO.apply(batch); err != nil {
				return nil, fmt.Errorf("difftest: shard coordinator applying batch %d: %w", i+1, err)
			}
			if mm, err := shardO.check(primary, i+1); mm != nil || err != nil {
				return mm, err
			}
		}
	}
	return nil, nil
}

// freeze snapshots the primary into a fresh read replica, the same pattern
// internal/replica.NewVersion uses for the production read pool.
func freeze(primary *core.Checker) (*core.Checker, error) {
	rep := core.New(primary.Catalog().Clone(), primary.Options())
	if DebugChecks {
		rep.Store().Kernel().SetDebugChecks(true)
	}
	if err := rep.AdoptIndices(primary.Store().Kernel(), primary.SnapshotIndices()); err != nil {
		return nil, fmt.Errorf("difftest: freezing replica: %w", err)
	}
	return rep, nil
}

func checkAll(primary *core.Checker, cts []logic.Constraint, step int) (*Mismatch, error) {
	rep, err := freeze(primary)
	if err != nil {
		return nil, err
	}
	for _, ct := range cts {
		if mm, err := checkConstraint(primary, rep, ct, step); mm != nil || err != nil {
			return mm, err
		}
	}
	return nil, nil
}

func checkConstraint(primary, rep *core.Checker, ct logic.Constraint, step int) (*Mismatch, error) {
	// A constraint that does not analyze against the schema is a harness
	// defect (or a shrink candidate that cut a referenced table), never an
	// engine divergence: reject it as a hard error so the shrinker cannot
	// "minimize" a real bug into a dangling reference.
	an, err := logic.Analyze(ct.F, primary.Resolver())
	if err != nil {
		return nil, fmt.Errorf("difftest: analyzing %s: %w", ct.Name, err)
	}
	mm := func(kind, format string, args ...interface{}) *Mismatch {
		return &Mismatch{Step: step, Constraint: ct.Name, Kind: kind, Detail: fmt.Sprintf(format, args...)}
	}
	pres := primary.CheckOne(ct)
	if pres.Err != nil || pres.FellBack {
		// Budget is unlimited and every table is indexed, so any failure —
		// including a silent degrade to the SQL fallback, which would make
		// this comparison SQL-vs-SQL — is an evaluator bug.
		reason := pres.Err
		if reason == nil {
			reason = pres.FallbackReason
		}
		return mm("primary-error", "primary BDD check failed: %v; brute referee: holds=%v", reason, bruteHolds(an)), nil
	}
	q, err := sqlengine.Compile(ct, primary.Resolver())
	if err != nil {
		return mm("sql-error", "SQL compile failed: %v; brute referee: holds=%v", err, bruteHolds(an)), nil
	}
	sqlViolated, sqlRows, err := q.Run()
	if err != nil {
		return mm("sql-error", "SQL run failed: %v; brute referee: holds=%v", err, bruteHolds(an)), nil
	}
	rres := rep.CheckOneOpts(ct, core.CheckOptions{NoSQLFallback: true})
	if rres.Err != nil {
		return mm("replica-error", "replica check failed: %v; brute referee: holds=%v", rres.Err, bruteHolds(an)), nil
	}
	if pres.Violated != sqlViolated || pres.Violated != rres.Violated {
		return mm("verdict", "primary(%s)=%v sql=%v replica=%v; brute referee: holds=%v",
			pres.Method, pres.Violated, sqlViolated, rres.Violated, bruteHolds(an)), nil
	}
	if !pres.Violated {
		return nil, nil
	}
	// Witness comparison only applies to validity checks: existence checks
	// (a leading ∃ after prenexing) have no per-binding witnesses.
	if logic.Rewrite(an.F, logic.DefaultRewriteOptions()).Mode != logic.CheckValidity {
		return nil, nil
	}
	pw, err := primary.ViolationWitnesses(ct, witnessLimit)
	if err != nil {
		return mm("witness-error", "primary witness enumeration failed: %v", err), nil
	}
	rw, err := rep.ViolationWitnesses(ct, witnessLimit)
	if err != nil {
		return mm("witness-error", "replica witness enumeration failed: %v", err), nil
	}
	if len(pw) >= witnessLimit || len(rw) >= witnessLimit {
		return nil, nil // truncated enumerations are not comparable
	}
	// Primary vs replica: the adopted BDDs must yield the same set exactly.
	ps, rs := witnessSet(pw), witnessSet(rw)
	if diff := setDiff(ps, rs); diff != "" {
		return mm("witnesses", "primary vs replica: %s (primary %d, replica %d)", diff, len(pw), len(rw)), nil
	}
	// Primary vs SQL: project both sides onto the variables they share.
	// Ambiguous base names (two stripped variables recovering the same
	// source name) make the projection ill-defined; skip those.
	if len(pw) > 0 && sqlRows != nil {
		bddVars := pw[0].Vars
		sqlVars := make([]string, len(sqlRows.Vars))
		for i, v := range sqlRows.Vars {
			sqlVars[i] = logic.BaseName(v)
		}
		if !hasDup(bddVars) && !hasDup(sqlVars) {
			common := intersect(bddVars, sqlVars)
			bp := make(map[string]bool)
			for _, w := range pw {
				bp[projectWitness(common, w.Vars, w.Values)] = true
			}
			sp := make(map[string]bool)
			for i := 0; i < sqlRows.Len(); i++ {
				sp[projectWitness(common, sqlVars, sqlRows.Decode(i))] = true
			}
			if diff := setDiff(bp, sp); diff != "" {
				return mm("witnesses", "primary vs sql on common vars %v: %s (primary %d, sql %d rows)",
					common, diff, len(pw), sqlRows.Len()), nil
			}
		}
	}
	return nil, nil
}

// WitnessSet canonicalizes witnesses into a set of "var=val,…" keys,
// order-independent on both the witness list and the variable order. Other
// suites (the durability round-trip property test) reuse it to compare
// witness sets across checkers.
func WitnessSet(ws []core.Witness) map[string]bool { return witnessSet(ws) }

// SetDiff describes the first few asymmetric elements of two WitnessSet
// results, or "" when they are equal.
func SetDiff(a, b map[string]bool) string { return setDiff(a, b) }

// witnessSet canonicalizes witnesses into a set of "var=val,…" keys.
func witnessSet(ws []core.Witness) map[string]bool {
	out := make(map[string]bool, len(ws))
	for _, w := range ws {
		out[projectWitness(w.Vars, w.Vars, w.Values)] = true
	}
	return out
}

// projectWitness renders the binding restricted to keep, sorted by variable
// name so keys are order-independent.
func projectWitness(keep, vars, vals []string) string {
	parts := make([]string, 0, len(keep))
	for _, k := range keep {
		for i, v := range vars {
			if v == k {
				parts = append(parts, k+"="+vals[i])
				break
			}
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// setDiff describes the first few asymmetric elements, or "" when equal.
func setDiff(a, b map[string]bool) string {
	var onlyA, onlyB []string
	for k := range a {
		if !b[k] {
			onlyA = append(onlyA, k)
		}
	}
	for k := range b {
		if !a[k] {
			onlyB = append(onlyB, k)
		}
	}
	if len(onlyA) == 0 && len(onlyB) == 0 {
		return ""
	}
	sort.Strings(onlyA)
	sort.Strings(onlyB)
	const maxShow = 5
	if len(onlyA) > maxShow {
		onlyA = append(onlyA[:maxShow], "…")
	}
	if len(onlyB) > maxShow {
		onlyB = append(onlyB[:maxShow], "…")
	}
	return fmt.Sprintf("only in first: %v; only in second: %v", onlyA, onlyB)
}

func hasDup(ss []string) bool {
	seen := make(map[string]bool, len(ss))
	for _, s := range ss {
		if seen[s] {
			return true
		}
		seen[s] = true
	}
	return false
}

func intersect(a, b []string) []string {
	inB := make(map[string]bool, len(b))
	for _, s := range b {
		inB[s] = true
	}
	var out []string
	for _, s := range a {
		if inB[s] {
			out = append(out, s)
		}
	}
	return out
}
