package difftest

// follower.go adds a fourth evaluation path to the harness: a WAL-shipped
// follower. When FollowerSoak is on, RunCase seals the initial catalog as an
// epoch-1 snapshot in a throwaway store, appends every update batch to its
// WAL under the next epoch — exactly the artifacts a cvserved follower
// receives over /snapshot and /wal — and after each step recovers a fresh
// checker from snapshot + WAL replay and compares it against the primary:
// verdicts on every constraint, and full witness-set identity on violated
// validity checks. Any disagreement means snapshot/WAL replication would
// hand a replica a state that answers differently from its leader.

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/store"
)

// FollowerSoak makes RunCase cross-check a WAL-shipped follower after the
// initial load and after every update batch. The difftest suite's -follower
// flag sets it.
var FollowerSoak bool

// followerOracle owns the throwaway store the case's artifacts ship through.
type followerOracle struct {
	dir  string
	st   *store.Store
	opts core.Options
}

// newFollowerOracle seals the primary's current state as the epoch-1
// snapshot — the follower's bootstrap image.
func newFollowerOracle(primary *core.Checker, cts []logic.Constraint) (*followerOracle, error) {
	dir, err := os.MkdirTemp("", "difftest-follower-*")
	if err != nil {
		return nil, fmt.Errorf("difftest: follower store dir: %w", err)
	}
	st, err := store.Open(dir, store.Options{Fsync: store.FsyncOff})
	if err != nil {
		os.RemoveAll(dir)
		return nil, fmt.Errorf("difftest: opening follower store: %w", err)
	}
	if err := st.WriteSnapshot(primary, store.RenderConstraints(cts), 1); err != nil {
		st.Close()
		os.RemoveAll(dir)
		return nil, fmt.Errorf("difftest: sealing follower bootstrap snapshot: %w", err)
	}
	return &followerOracle{dir: dir, st: st, opts: primary.Options()}, nil
}

func (f *followerOracle) close() {
	f.st.Close()
	os.RemoveAll(f.dir)
}

// ship appends one applied batch under its epoch — the WAL record a leader
// would serve to tailing followers.
func (f *followerOracle) ship(epoch uint64, batch []core.Update) error {
	return f.st.AppendBatch(epoch, batch)
}

// check recovers a follower checker from the shipped artifacts and holds it
// against the primary. The caller runs it only after checkAll passed, so the
// primary's own answers are already known to agree with the SQL baseline.
func (f *followerOracle) check(primary *core.Checker, cts []logic.Constraint, step int) (*Mismatch, error) {
	fol, _, _, err := f.st.Recover(f.opts)
	if err != nil {
		return nil, fmt.Errorf("difftest: follower recovery at step %d: %w", step, err)
	}
	if DebugChecks {
		fol.Store().Kernel().SetDebugChecks(true)
	}
	for _, ct := range cts {
		mm := func(kind, format string, args ...interface{}) *Mismatch {
			return &Mismatch{Step: step, Constraint: ct.Name, Kind: kind, Detail: fmt.Sprintf(format, args...)}
		}
		pres := primary.CheckOne(ct)
		fres := fol.CheckOne(ct)
		if fres.Err != nil || fres.FellBack {
			reason := fres.Err
			if reason == nil {
				reason = fres.FallbackReason
			}
			return mm("follower-error", "follower BDD check failed after snapshot+WAL replay: %v", reason), nil
		}
		if pres.Violated != fres.Violated {
			return mm("follower-verdict", "primary(%s)=%v follower(%s)=%v after %d shipped batches",
				pres.Method, pres.Violated, fres.Method, fres.Violated, step), nil
		}
		if !pres.Violated {
			continue
		}
		an, err := logic.Analyze(ct.F, primary.Resolver())
		if err != nil {
			return nil, fmt.Errorf("difftest: analyzing %s: %w", ct.Name, err)
		}
		if logic.Rewrite(an.F, logic.DefaultRewriteOptions()).Mode != logic.CheckValidity {
			continue // existence checks have no per-binding witnesses
		}
		pw, err := primary.ViolationWitnesses(ct, witnessLimit)
		if err != nil {
			return mm("witness-error", "primary witness enumeration failed: %v", err), nil
		}
		fw, err := fol.ViolationWitnesses(ct, witnessLimit)
		if err != nil {
			return mm("witness-error", "follower witness enumeration failed: %v", err), nil
		}
		if len(pw) >= witnessLimit || len(fw) >= witnessLimit {
			continue // truncated enumerations are not comparable
		}
		if diff := SetDiff(WitnessSet(pw), WitnessSet(fw)); diff != "" {
			return mm("follower-witnesses", "primary vs follower: %s (primary %d, follower %d)", diff, len(pw), len(fw)), nil
		}
	}
	return nil, nil
}
