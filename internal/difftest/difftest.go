// Package difftest is the correctness backstop of the repository: a seeded,
// deterministic differential-testing harness that cross-checks the three
// constraint-evaluation paths the system ships — the BDD evaluator on the
// primary kernel, the sqlengine SQL baseline, and a read replica adopted via
// core.SnapshotIndices/bdd.CopyTo — on randomly generated (constraint,
// catalog) pairs, including random incremental-update batches between
// re-checks. Any verdict or witness-set disagreement is a bug in one of the
// engines; the harness shrinks the failing pair greedily and emits it as a
// reproducible corpus file under testdata/.
//
// The same generator drives three entry points:
//
//   - TestDifferentialSoak: a seeded soak, `-seeds N` catalogs of 8
//     constraints each, deterministic from the seed base.
//   - FuzzDifferential: native Go fuzzing; the fuzz input bytes are decoded
//     into generator choices, so coverage-guided mutation explores schema and
//     formula space.
//   - TestCorpus: replays every testdata/*.case file; shrunken repros of
//     fixed divergences are checked in here as regression seeds.
//
// CAvSAT validates SAT-based consistent answers against query-level oracles
// the same way, and ROBDD set-constraint solvers lean on randomized
// cross-validation; this package is that backstop for the paper's claim that
// logical indices return exactly the verdicts of the SQL queries they
// replace.
package difftest

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/relation"
)

// Chooser is the single source of nondeterminism of the generator. The soak
// backs it with a seeded math/rand stream; the fuzz target decodes the fuzz
// input bytes into choices, so the corpus mutates generator decisions rather
// than raw catalogs.
type Chooser interface {
	// Intn returns a choice in [0, n). n must be positive.
	Intn(n int) int
}

// RNGChooser adapts a seeded *rand.Rand into a Chooser.
type RNGChooser struct{ Rand *rand.Rand }

// Intn implements Chooser.
func (c RNGChooser) Intn(n int) int { return c.Rand.Intn(n) }

// ByteChooser decodes a byte stream into choices; once the stream is
// exhausted every choice is 0, so any byte string denotes a complete,
// deterministic case.
type ByteChooser struct {
	Data []byte
	pos  int
}

// Intn implements Chooser.
func (c *ByteChooser) Intn(n int) int {
	if n <= 1 {
		return 0
	}
	if c.pos >= len(c.Data) {
		return 0
	}
	v := int(c.Data[c.pos])
	c.pos++
	return v % n
}

// DomainSpec declares one value domain and its full interned dictionary.
// Interning everything up front keeps dictionary codes (and hence BDD block
// widths) independent of which values the row generator happens to draw —
// and leaves deliberate gaps: values that exist in the dictionary but in no
// row exercise the engines' unknown-vs-absent distinction.
type DomainSpec struct {
	Name   string
	Values []string
}

// ColSpec declares one column of a generated table.
type ColSpec struct {
	Name   string
	Domain string
}

// TableSpec declares one table and its (bag-semantics) contents.
type TableSpec struct {
	Name string
	Cols []ColSpec
	Rows [][]string
}

// ConstraintSpec is one generated constraint, stored as source text so that
// corpus files round-trip through the parser.
type ConstraintSpec struct {
	Name   string
	Source string
}

// Case is a complete, self-describing differential test case: a concrete
// catalog, a constraint set, and a sequence of update batches to drive the
// incremental index-maintenance path. Cases are plain data: they build into
// fresh catalogs any number of times (the shrinker re-runs candidates), and
// they serialize to corpus files (see corpus.go).
type Case struct {
	// Seed feeds core.Options.RandomSeed (the OrderRandom index layout).
	Seed int64
	// Ordering is the index variable-ordering method, in the CLI spelling
	// accepted by core.ParseOrderingMethod.
	Ordering string
	Domains  []DomainSpec
	Tables   []TableSpec
	// Constraints are checked against all three oracles after the initial
	// load and again after every update batch.
	Constraints []ConstraintSpec
	// Updates are applied to the primary through core.Checker.Apply — the
	// incremental maintenance path — one batch at a time, with a full oracle
	// re-check (and a fresh replica freeze) after each batch.
	Updates [][]core.Update
}

// Build materializes the case into a fresh catalog.
func (c *Case) Build() (*relation.Catalog, error) {
	cat := relation.NewCatalog()
	for _, d := range c.Domains {
		dom := cat.Domain(d.Name)
		for _, v := range d.Values {
			dom.Intern(v)
		}
	}
	for _, ts := range c.Tables {
		cols := make([]relation.Column, len(ts.Cols))
		for i, cs := range ts.Cols {
			cols[i] = relation.Column{Name: cs.Name, Domain: cs.Domain}
		}
		t, err := cat.CreateTable(ts.Name, cols)
		if err != nil {
			return nil, fmt.Errorf("difftest: building case: %w", err)
		}
		for _, row := range ts.Rows {
			if len(row) != len(cols) {
				return nil, fmt.Errorf("difftest: table %s: row has %d values, want %d", ts.Name, len(row), len(cols))
			}
			t.Insert(row...)
		}
	}
	return cat, nil
}

// clone deep-copies the case, so the shrinker can mutate candidates freely.
func (c *Case) clone() *Case {
	nc := &Case{Seed: c.Seed, Ordering: c.Ordering}
	for _, d := range c.Domains {
		nc.Domains = append(nc.Domains, DomainSpec{Name: d.Name, Values: append([]string(nil), d.Values...)})
	}
	for _, t := range c.Tables {
		nt := TableSpec{Name: t.Name, Cols: append([]ColSpec(nil), t.Cols...)}
		for _, r := range t.Rows {
			nt.Rows = append(nt.Rows, append([]string(nil), r...))
		}
		nc.Tables = append(nc.Tables, nt)
	}
	nc.Constraints = append([]ConstraintSpec(nil), c.Constraints...)
	for _, b := range c.Updates {
		nb := make([]core.Update, len(b))
		for i, u := range b {
			nb[i] = core.Update{Table: u.Table, Op: u.Op, Values: append([]string(nil), u.Values...)}
		}
		nc.Updates = append(nc.Updates, nb)
	}
	return nc
}
