package difftest

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/core"
)

// corpus.go serializes cases as human-readable, line-oriented .case files.
// Shrunken repros of fixed divergences live under testdata/ in this format
// and are replayed by TestCorpus as regression seeds; the format is also
// the handle for reproducing a failure by name (see README, "Testing &
// fuzzing"). Identifiers (domain, table, column, constraint names and the
// ordering method) are bare words; every data value and constraint source is
// Go-quoted, so values may contain spaces or any byte.
//
// Grammar, one directive per line ('#' starts a comment):
//
//	ordering <method>
//	seed <int64>
//	domain <name> <value>...
//	table <name>
//	col <name> <domain>          # applies to the last table
//	row <value>...               # applies to the last table
//	batch                        # starts a new update batch
//	insert <table> <value>...    # applies to the last batch
//	delete <table> <value>...    # applies to the last batch
//	constraint <name> <source>

// SaveCase renders the case in corpus format.
func SaveCase(c *Case) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# difftest case\nordering %s\nseed %d\n", c.Ordering, c.Seed)
	for _, d := range c.Domains {
		fmt.Fprintf(&b, "domain %s%s\n", d.Name, quoteAll(d.Values))
	}
	for _, t := range c.Tables {
		fmt.Fprintf(&b, "table %s\n", t.Name)
		for _, col := range t.Cols {
			fmt.Fprintf(&b, "col %s %s\n", col.Name, col.Domain)
		}
		for _, row := range t.Rows {
			fmt.Fprintf(&b, "row%s\n", quoteAll(row))
		}
	}
	for _, batch := range c.Updates {
		fmt.Fprintf(&b, "batch\n")
		for _, u := range batch {
			op := "insert"
			if u.Op == core.UpdateDelete {
				op = "delete"
			}
			fmt.Fprintf(&b, "%s %s%s\n", op, u.Table, quoteAll(u.Values))
		}
	}
	for _, ct := range c.Constraints {
		fmt.Fprintf(&b, "constraint %s %s\n", ct.Name, strconv.Quote(ct.Source))
	}
	return b.String()
}

// SaveCaseFile writes the case to dir/name.case and returns the path.
func SaveCaseFile(dir, name string, c *Case) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, name+".case")
	if err := os.WriteFile(path, []byte(SaveCase(c)), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// LoadCase parses the corpus format.
func LoadCase(data []byte) (*Case, error) {
	c := &Case{Ordering: "prob"}
	var curTable *TableSpec
	var curBatch int = -1
	for ln, line := range strings.Split(string(data), "\n") {
		fields, err := splitFields(line)
		if err != nil {
			return nil, fmt.Errorf("difftest: corpus line %d: %w", ln+1, err)
		}
		if len(fields) == 0 {
			continue
		}
		bad := func(want string) error {
			return fmt.Errorf("difftest: corpus line %d: %s directive wants %s", ln+1, fields[0], want)
		}
		switch fields[0] {
		case "ordering":
			if len(fields) != 2 {
				return nil, bad("a method name")
			}
			c.Ordering = fields[1]
		case "seed":
			if len(fields) != 2 {
				return nil, bad("an integer")
			}
			s, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("difftest: corpus line %d: %w", ln+1, err)
			}
			c.Seed = s
		case "domain":
			if len(fields) < 2 {
				return nil, bad("a name and values")
			}
			c.Domains = append(c.Domains, DomainSpec{Name: fields[1], Values: fields[2:]})
		case "table":
			if len(fields) != 2 {
				return nil, bad("a name")
			}
			c.Tables = append(c.Tables, TableSpec{Name: fields[1]})
			curTable = &c.Tables[len(c.Tables)-1]
		case "col":
			if curTable == nil {
				return nil, fmt.Errorf("difftest: corpus line %d: col before table", ln+1)
			}
			if len(fields) != 3 {
				return nil, bad("a name and a domain")
			}
			curTable.Cols = append(curTable.Cols, ColSpec{Name: fields[1], Domain: fields[2]})
		case "row":
			if curTable == nil {
				return nil, fmt.Errorf("difftest: corpus line %d: row before table", ln+1)
			}
			curTable.Rows = append(curTable.Rows, fields[1:])
		case "batch":
			c.Updates = append(c.Updates, nil)
			curBatch = len(c.Updates) - 1
		case "insert", "delete":
			if curBatch < 0 {
				return nil, fmt.Errorf("difftest: corpus line %d: %s before batch", ln+1, fields[0])
			}
			if len(fields) < 2 {
				return nil, bad("a table and values")
			}
			op := core.UpdateInsert
			if fields[0] == "delete" {
				op = core.UpdateDelete
			}
			c.Updates[curBatch] = append(c.Updates[curBatch], core.Update{Table: fields[1], Op: op, Values: fields[2:]})
		case "constraint":
			if len(fields) != 3 {
				return nil, bad("a name and a quoted source")
			}
			c.Constraints = append(c.Constraints, ConstraintSpec{Name: fields[1], Source: fields[2]})
		default:
			return nil, fmt.Errorf("difftest: corpus line %d: unknown directive %q", ln+1, fields[0])
		}
	}
	return c, nil
}

// LoadCaseFile reads and parses one .case file.
func LoadCaseFile(path string) (*Case, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return LoadCase(data)
}

func quoteAll(vals []string) string {
	var b strings.Builder
	for _, v := range vals {
		b.WriteByte(' ')
		b.WriteString(strconv.Quote(v))
	}
	return b.String()
}

// splitFields tokenizes one line: bare words separated by spaces, with
// Go-quoted strings as single fields; '#' outside quotes starts a comment.
func splitFields(line string) ([]string, error) {
	var out []string
	i := 0
	for i < len(line) {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r') {
			i++
		}
		if i >= len(line) || line[i] == '#' {
			break
		}
		if line[i] == '"' {
			j := i + 1
			for j < len(line) && line[j] != '"' {
				if line[j] == '\\' {
					j++
				}
				j++
			}
			if j >= len(line) {
				return nil, fmt.Errorf("unterminated quote")
			}
			s, err := strconv.Unquote(line[i : j+1])
			if err != nil {
				return nil, err
			}
			out = append(out, s)
			i = j + 1
		} else {
			j := i
			for j < len(line) && line[j] != ' ' && line[j] != '\t' && line[j] != '\r' {
				j++
			}
			out = append(out, line[i:j])
			i = j
		}
	}
	return out, nil
}
