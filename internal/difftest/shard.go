package difftest

// shard.go adds the sharded scatter-gather coordinator as another
// evaluation path of the harness. When ShardSoak is N > 0, RunCase builds a
// second copy of the case's catalog, partitions it across N in-process
// shard kernels behind a shard.Coordinator, drives every update batch
// through Coordinator.Update — the routed, fan-out mutation path — and
// after each step holds the coordinator against the primary: verdicts on
// every constraint, and full witness-set identity on violated validity
// checks. Any disagreement means constraint decomposition, the per-shard
// merge, or the residual fallback answers differently from a single
// kernel.
//
// The partition key is chosen deterministically from the case — the
// (table, column) whose decomposition makes the most constraints
// shard-local — so every run replays identically while routing as much as
// the generated schema allows through the scatter-gather merge; whatever
// remains lands on the single-shard and residual paths, which must agree
// with the primary just the same.

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/relation"
	"repro/internal/shard"
)

// ShardSoak makes RunCase cross-check an in-process sharded coordinator
// with this many shards after the initial load and after every update
// batch. The difftest suite's -shards flag sets it; 0 disables the oracle.
var ShardSoak int

// shardOracle owns the coordinator and the constraint set it was built
// with.
type shardOracle struct {
	coord *shard.Coordinator
	cts   []logic.Constraint
}

// newShardOracle partitions a fresh build of the case across ShardSoak
// in-process shards. The primary is untouched: the coordinator gets its own
// catalog (same rows, same interned dictionaries) so divergence can only
// come from the sharded evaluation itself.
func newShardOracle(c *Case, cts []logic.Constraint) (*shardOracle, error) {
	cat, err := c.Build()
	if err != nil {
		return nil, fmt.Errorf("difftest: rebuilding case for shard oracle: %w", err)
	}
	part, err := pickPartitioner(c, cat, cts)
	if err != nil {
		return nil, err
	}
	coord, err := shard.NewInProcess(cat, cts, part, shard.Options{
		NodeBudget: -1,
		RandomSeed: c.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("difftest: building shard coordinator: %w", err)
	}
	return &shardOracle{coord: coord, cts: cts}, nil
}

// pickPartitioner tries every (table, column) of the case as the partition
// key and keeps the one whose decomposition makes the most constraints
// shard-local — the scatter-gather merge is the riskiest path, so the
// oracle should route as much through it as the schema allows. Iteration
// order follows the case spec, so the choice is deterministic; a case
// where nothing decomposes local still runs (single-shard and residual
// paths must agree with the primary too).
func pickPartitioner(c *Case, cat *relation.Catalog, cts []logic.Constraint) (*shard.Partitioner, error) {
	if len(c.Tables) == 0 || len(c.Tables[0].Cols) == 0 {
		return nil, fmt.Errorf("difftest: shard oracle needs at least one table column as the partition key")
	}
	res := logic.CatalogResolver{Catalog: cat}
	var best *shard.Partitioner
	bestLocal := -1
	for _, ts := range c.Tables {
		for _, col := range ts.Cols {
			p, err := shard.NewPartitioner(cat, shard.Key{Table: ts.Name, Column: col.Name}, ShardSoak, shard.HashMode, nil)
			if err != nil {
				return nil, fmt.Errorf("difftest: shard partitioner on %s.%s: %w", ts.Name, col.Name, err)
			}
			local := 0
			for _, ct := range cts {
				if p.Decompose(ct, res).Kind == shard.PlanLocal {
					local++
				}
			}
			if local > bestLocal {
				best, bestLocal = p, local
			}
		}
	}
	return best, nil
}

func (s *shardOracle) close() { s.coord.Close() }

// apply routes one update batch through the coordinator — the same
// validate-route-fanout path a production coordinator runs.
func (s *shardOracle) apply(batch []core.Update) error {
	applied, _, err := s.coord.Update(context.Background(), batch, nil)
	if err != nil {
		return err
	}
	if applied != len(batch) {
		return fmt.Errorf("coordinator applied %d of %d tuples", applied, len(batch))
	}
	return nil
}

// check holds the coordinator against the primary. The caller runs it only
// after checkAll passed, so the primary's answers already agree with the
// SQL baseline.
func (s *shardOracle) check(primary *core.Checker, step int) (*Mismatch, error) {
	ctx := context.Background()
	outs, err := s.coord.Check(ctx, s.cts, 0, nil)
	if err != nil {
		return nil, fmt.Errorf("difftest: shard coordinator check at step %d: %w", step, err)
	}
	for i, ct := range s.cts {
		mm := func(kind, format string, args ...interface{}) *Mismatch {
			return &Mismatch{Step: step, Constraint: ct.Name, Kind: kind, Detail: fmt.Sprintf(format, args...)}
		}
		out := outs[i]
		if out.Err != "" || out.FellBack {
			// Budget is unlimited and every shard indexes every table, so any
			// failure or silent degrade is a sharding bug.
			reason := out.Err
			if reason == "" {
				reason = out.FallbackReason
			}
			return mm("shard-error", "sharded check failed (method %s): %s", out.Method, reason), nil
		}
		pres := primary.CheckOne(ct)
		if pres.Violated != out.Violated {
			plan := s.coord.PlanFor(ct)
			return mm("shard-verdict", "primary(%s)=%v coordinator(%s)=%v under plan %s",
				pres.Method, pres.Violated, out.Method, out.Violated, plan), nil
		}
		if !pres.Violated {
			continue
		}
		an, err := logic.Analyze(ct.F, primary.Resolver())
		if err != nil {
			return nil, fmt.Errorf("difftest: analyzing %s: %w", ct.Name, err)
		}
		if logic.Rewrite(an.F, logic.DefaultRewriteOptions()).Mode != logic.CheckValidity {
			continue // existence checks have no per-binding witnesses
		}
		pw, err := primary.ViolationWitnesses(ct, witnessLimit)
		if err != nil {
			return mm("witness-error", "primary witness enumeration failed: %v", err), nil
		}
		sw, _, err := s.coord.Witnesses(ctx, ct, witnessLimit, 0, nil)
		if err != nil {
			return mm("witness-error", "coordinator witness enumeration failed: %v", err), nil
		}
		if len(pw) >= witnessLimit || len(sw) >= witnessLimit {
			continue // truncated enumerations are not comparable
		}
		if diff := SetDiff(WitnessSet(pw), WitnessSet(sw)); diff != "" {
			plan := s.coord.PlanFor(ct)
			return mm("shard-witnesses", "primary vs coordinator under plan %s: %s (primary %d, coordinator %d)",
				plan, diff, len(pw), len(sw)), nil
		}
	}
	return nil, nil
}
