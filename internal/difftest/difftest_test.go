package difftest

import (
	"flag"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/logic"
)

// soakSeeds is how many seeded cases TestDifferentialSoak generates; each
// case carries constraintsPerCase constraints checked three ways at every
// step, so the default runs 70×8 = 560 (constraint, catalog) pairs. Raise
// it for a longer hunt: go test ./internal/difftest -run TestDifferentialSoak -seeds 2000
var soakSeeds = flag.Int("seeds", 70, "number of seeded cases TestDifferentialSoak runs")

// -debugchecks turns on bdd.Kernel runtime Ref validation for every kernel
// the harness creates; a pin or cross-kernel bug then panics at the faulty
// operation instead of surfacing as a downstream verdict mismatch.
var debugChecks = flag.Bool("debugchecks", false, "enable kernel DebugChecks on every harness kernel")

// -reorder forces a full sifting pass on the primary kernel after the
// initial load and after every update batch of every soak case, so verdict
// and witness identity is re-proven against freshly reordered kernels.
var reorderSoak = flag.Bool("reorder", false, "force dynamic reordering between update batches in TestDifferentialSoak")

// -follower adds a fourth comparison target to every soak case: a checker
// recovered from a snapshot + WAL store fed the same update batches — the
// artifacts a cvserved follower replicates — must match the primary's
// verdicts and witness sets at every step.
var followerSoak = flag.Bool("follower", false, "cross-check a WAL-shipped follower checker at every soak step")

// -shards adds the sharded scatter-gather coordinator as a comparison
// target: every soak case is also partitioned across this many in-process
// shard kernels, every update batch is routed through the coordinator, and
// verdicts plus witness sets must match the primary at every step.
var shardSoak = flag.Int("shards", 0, "cross-check an in-process sharded coordinator with this many shards at every soak step (0 = off)")

// soakBase is the fixed seed base: case i derives from soakBase+i, so every
// run (and every CI run) replays the identical case sequence.
const soakBase = int64(0xD1FF)

func TestDifferentialSoak(t *testing.T) {
	DebugChecks = *debugChecks
	ForceReorder = *reorderSoak
	FollowerSoak = *followerSoak
	ShardSoak = *shardSoak
	defer func() { ForceReorder = false; FollowerSoak = false; ShardSoak = 0 }()
	pairs := 0
	for i := 0; i < *soakSeeds; i++ {
		rng := rand.New(rand.NewSource(soakBase + int64(i)))
		c := GenerateCase(RNGChooser{Rand: rng})
		mm, err := RunCase(c)
		if err != nil {
			t.Fatalf("seed %d: hard error: %v\ncase:\n%s", i, err, SaveCase(c))
		}
		if mm != nil {
			sh := Shrink(c)
			name := fmt.Sprintf("fail-seed%d", i)
			path, werr := SaveCaseFile("testdata", name, sh)
			if werr != nil {
				path = "(save failed: " + werr.Error() + ")"
			}
			t.Fatalf("seed %d: %s\nshrunken repro saved to %s:\n%s", i, mm, path, SaveCase(sh))
		}
		pairs += len(c.Constraints)
	}
	t.Logf("soak: %d cases, %d (constraint, catalog) pairs, zero mismatches", *soakSeeds, pairs)
	if *soakSeeds >= 63 && pairs < 500 {
		t.Fatalf("soak covered only %d (constraint, catalog) pairs, want >= 500", pairs)
	}
}

// TestCorpus replays every checked-in repro. Corpus files are shrunken
// witnesses of fixed divergences (plus representative generated cases), so
// they must pass cleanly; a reappearing mismatch is a regression.
func TestCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.case"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no corpus files under testdata/")
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			c, err := LoadCaseFile(path)
			if err != nil {
				t.Fatal(err)
			}
			mm, err := RunCase(c)
			if err != nil {
				t.Fatalf("hard error: %v", err)
			}
			if mm != nil {
				t.Fatalf("regression: %s", mm)
			}
		})
	}
}

func TestCorpusRoundTrip(t *testing.T) {
	for i := 0; i < 25; i++ {
		rng := rand.New(rand.NewSource(int64(1000 + i)))
		c := GenerateCase(RNGChooser{Rand: rng})
		back, err := LoadCase([]byte(SaveCase(c)))
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", i, err, SaveCase(c))
		}
		if !reflect.DeepEqual(c, back) {
			t.Fatalf("seed %d: round-trip changed the case\nbefore:\n%s\nafter:\n%s", i, SaveCase(c), SaveCase(back))
		}
	}
}

// TestGenerateDeterministic pins the generator: the same seed must yield
// the identical case (corpus names reference soak seeds, so drift would
// orphan them).
func TestGenerateDeterministic(t *testing.T) {
	for i := 0; i < 10; i++ {
		a := GenerateCase(RNGChooser{Rand: rand.New(rand.NewSource(int64(i)))})
		b := GenerateCase(RNGChooser{Rand: rand.New(rand.NewSource(int64(i)))})
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two generations differ", i)
		}
	}
}

// TestByteChooserTotal: any byte string (including none) decodes to a case
// that builds and runs — the contract FuzzDifferential relies on.
func TestByteChooserTotal(t *testing.T) {
	inputs := [][]byte{
		nil,
		{0},
		{255, 255, 255, 255},
		[]byte("arbitrary fuzz bytes, not a case encoding"),
	}
	rng := rand.New(rand.NewSource(7))
	for len(inputs) < 12 {
		n := rng.Intn(200)
		b := make([]byte, n)
		rng.Read(b)
		inputs = append(inputs, b)
	}
	for i, data := range inputs {
		c := GenerateCase(&ByteChooser{Data: data})
		if mm, err := RunCase(c); err != nil {
			t.Fatalf("input %d: hard error: %v", i, err)
		} else if mm != nil {
			t.Fatalf("input %d: %s", i, mm)
		}
	}
}

// TestShrinkPreservesPassing: shrinking a non-failing case is the identity.
func TestShrinkPreservesPassing(t *testing.T) {
	c := GenerateCase(RNGChooser{Rand: rand.New(rand.NewSource(3))})
	sh := Shrink(c)
	if !reflect.DeepEqual(c, sh) {
		t.Fatal("Shrink modified a case that does not fail")
	}
}

// TestFormulaShrinksSmaller: every candidate is strictly smaller than its
// source, the termination argument of the formula pass.
func TestFormulaShrinksSmaller(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var size func(f logic.Formula) int
	size = func(f logic.Formula) int {
		switch g := f.(type) {
		case logic.Truth:
			return 0
		case logic.Not:
			return 1 + size(g.F)
		case logic.And:
			return 1 + size(g.L) + size(g.R)
		case logic.Or:
			return 1 + size(g.L) + size(g.R)
		case logic.Implies:
			return 1 + size(g.L) + size(g.R)
		case logic.Quant:
			return 1 + len(g.Vars) + size(g.F)
		case logic.In:
			return 1 + len(g.Values)
		default:
			return 1
		}
	}
	for i := 0; i < 50; i++ {
		c := GenerateCase(RNGChooser{Rand: rand.New(rand.NewSource(int64(rng.Intn(1 << 16))))})
		for _, ct := range c.Constraints {
			f, err := logic.Parse(ct.Source)
			if err != nil {
				t.Fatalf("generated constraint does not parse: %v", err)
			}
			for _, g := range formulaShrinks(f) {
				if size(g) >= size(f) {
					t.Fatalf("shrink candidate %s not smaller than %s", g, f)
				}
			}
		}
	}
}
