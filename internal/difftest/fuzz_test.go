package difftest

import (
	"math/rand"
	"testing"
)

// FuzzDifferential feeds arbitrary bytes through ByteChooser into the case
// generator and runs the three-way oracle on the result. Coverage-guided
// mutation therefore explores the space of generator *decisions* — schemas,
// fills, formula shapes, update sequences — rather than mutating opaque
// serialized catalogs, so nearly every input is a meaningful case. Any byte
// string decodes (exhausted streams choose 0), so the target never skips.
func FuzzDifferential(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	// A few dense random decision streams as diverse starting points.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 6; i++ {
		b := make([]byte, 64+rng.Intn(192))
		rng.Read(b)
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			t.Skip("oversized input")
		}
		c := GenerateCase(&ByteChooser{Data: data})
		mm, err := RunCase(c)
		if err != nil {
			t.Fatalf("hard error: %v\ncase:\n%s", err, SaveCase(c))
		}
		if mm != nil {
			sh := Shrink(c)
			t.Fatalf("%s\nshrunken case:\n%s", mm, SaveCase(sh))
		}
	})
}
