package replica_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/relation"
	"repro/internal/replica"
)

const testRules = `
	constraint nj_codes:
	    forall c, a: CUST(c, a, "NJ") => a in {"201", "973", "908"}.
`

func newPrimary(t *testing.T) (*core.Checker, logic.Constraint) {
	t.Helper()
	cat := relation.NewCatalog()
	cust, err := cat.CreateTable("CUST", []relation.Column{
		{Name: "city"}, {Name: "areacode"}, {Name: "state"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range [][]string{
		{"Toronto", "416", "Ontario"},
		{"Oshawa", "905", "Ontario"},
		{"Newark", "973", "NJ"},
	} {
		cust.Insert(row...)
	}
	chk := core.New(cat, core.Options{})
	if _, err := chk.BuildIndex("CUST", "CUST", nil, core.OrderProbConverge); err != nil {
		t.Fatal(err)
	}
	cts, err := logic.ParseConstraints(testRules)
	if err != nil {
		t.Fatal(err)
	}
	return chk, cts[0]
}

func TestVersionIsFrozenAgainstPrimaryWrites(t *testing.T) {
	primary, ct := newPrimary(t)
	v, err := replica.NewVersion(primary, 1)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := replica.New(1, v)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// Violate the constraint on the primary after freezing.
	if err := primary.InsertTuple("CUST", "Newark", "416", "NJ"); err != nil {
		t.Fatal(err)
	}
	var res core.Result
	if err := pool.Do(context.Background(), func(chk *core.Checker, epoch uint64) {
		if epoch != 1 {
			t.Errorf("epoch = %d, want 1", epoch)
		}
		res = chk.CheckOneOpts(ct, core.CheckOptions{NoSQLFallback: true})
	}); err != nil {
		t.Fatal(err)
	}
	if res.Err != nil || res.Violated {
		t.Fatalf("replica at epoch 1 must not see the later write: %+v", res)
	}
	if !primary.CheckOne(ct).Violated {
		t.Fatal("primary must see its own write")
	}

	// After publishing a fresh version the next job sees the write.
	v2, err := replica.NewVersion(primary, 2)
	if err != nil {
		t.Fatal(err)
	}
	pool.Publish(v2)
	if err := pool.Do(context.Background(), func(chk *core.Checker, epoch uint64) {
		if epoch != 2 {
			t.Errorf("epoch = %d, want 2", epoch)
		}
		res = chk.CheckOneOpts(ct, core.CheckOptions{NoSQLFallback: true})
	}); err != nil {
		t.Fatal(err)
	}
	if res.Err != nil || !res.Violated {
		t.Fatalf("replica at epoch 2 must see the write: %+v", res)
	}
}

// TestConcurrentChecksThroughEpochHandoffs is the -race acceptance test: a
// single owner goroutine keeps mutating the primary and publishing new
// versions while concurrent readers drive ≥ 2 replicas through several
// epoch handoffs. Every observed result must be consistent with some
// published epoch: the constraint is violated exactly at odd epochs.
func TestConcurrentChecksThroughEpochHandoffs(t *testing.T) {
	primary, ct := newPrimary(t)
	v, err := replica.NewVersion(primary, 1)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 2
	pool, err := replica.New(workers, v)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if pool.Size() != workers {
		t.Fatalf("pool size %d, want %d", pool.Size(), workers)
	}

	// Epoch e > 1 is published after toggling the violating tuple: present
	// (violated) when e is even, absent when odd. Epoch 1 is clean.
	violatedAt := func(epoch uint64) bool { return epoch%2 == 0 }

	var epochsSeen sync.Map
	var checks atomic.Uint64
	check := func(chk *core.Checker, epoch uint64) {
		res := chk.CheckOneOpts(ct, core.CheckOptions{NoSQLFallback: true})
		if res.Err != nil {
			t.Errorf("replica check at epoch %d: %v", epoch, res.Err)
			return
		}
		if res.Violated != violatedAt(epoch) {
			t.Errorf("epoch %d: violated=%v, want %v", epoch, res.Violated, violatedAt(epoch))
		}
		epochsSeen.Store(epoch, true)
		checks.Add(1)
	}

	// The owner: toggle the violation, freeze, publish — 8 handoffs. Each
	// round launches a bounded burst of concurrent readers *before*
	// publishing, so in-flight reads race the handoff, then confirms the
	// epoch once the burst drains. Readers are bounded rather than
	// free-running: unbounded resubmission loops can starve the owner for
	// minutes on a single CPU (the real write path never has this problem —
	// it only Publishes, which is wait-free).
	for epoch := uint64(2); epoch <= 9; epoch++ {
		if violatedAt(epoch) {
			if err := primary.InsertTuple("CUST", "Newark", "416", "NJ"); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := primary.DeleteTuple("CUST", "Newark", "416", "NJ"); err != nil {
				t.Fatal(err)
			}
		}
		nv, err := replica.NewVersion(primary, epoch)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 5; i++ {
					if err := pool.Do(context.Background(), check); err != nil {
						t.Errorf("Do: %v", err)
						return
					}
				}
			}()
		}
		pool.Publish(nv) // races the burst above
		wg.Wait()
		// The queue has drained, so a fresh job cannot starve; it was
		// submitted after Publish, so the worker swaps before running it.
		if err := pool.Do(context.Background(), func(chk *core.Checker, got uint64) {
			if got < epoch {
				t.Errorf("job submitted after publish of epoch %d ran at %d", epoch, got)
			}
			check(chk, got)
		}); err != nil {
			t.Fatal(err)
		}
	}

	if pool.Epoch() != 9 {
		t.Fatalf("pool epoch %d, want 9", pool.Epoch())
	}
	var distinct int
	epochsSeen.Range(func(_, _ any) bool { distinct++; return true })
	// The owner waited for each of epochs 2-9 to be observed.
	if distinct < 8 {
		t.Fatalf("saw %d distinct epochs, want ≥ 8", distinct)
	}
	if pool.Swaps() < 2 {
		t.Fatalf("swaps = %d, want ≥ 2 (both workers must have materialized)", pool.Swaps())
	}
	stats := pool.Stats()
	if len(stats) != workers {
		t.Fatalf("got %d worker stats, want %d", len(stats), workers)
	}
	var jobs uint64
	for _, s := range stats {
		jobs += s.Jobs
		if s.Jobs > 0 && s.Kernel.Live < 2 {
			t.Fatalf("worker %d served %d jobs with an empty kernel", s.Worker, s.Jobs)
		}
	}
	if jobs < checks.Load() {
		t.Fatalf("worker stats count %d jobs, checkers completed %d", jobs, checks.Load())
	}
	t.Logf("%d checks across %d epochs, %d swaps", checks.Load(), distinct, pool.Swaps())
}

func TestPoolClose(t *testing.T) {
	primary, _ := newPrimary(t)
	v, err := replica.NewVersion(primary, 1)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := replica.New(2, v)
	if err != nil {
		t.Fatal(err)
	}
	pool.Close()
	pool.Close() // idempotent
	if err := pool.Do(context.Background(), func(*core.Checker, uint64) {}); !errors.Is(err, replica.ErrClosed) {
		t.Fatalf("Do after Close = %v, want ErrClosed", err)
	}
}

func TestDoRespectsContext(t *testing.T) {
	primary, _ := newPrimary(t)
	v, err := replica.NewVersion(primary, 1)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := replica.New(1, v)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Occupy the single worker, then submit with a canceled context: Do
	// must return promptly — either the job slipped into the queue (nil
	// after release) or submission observed the cancellation.
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		pool.Do(context.Background(), func(*core.Checker, uint64) {
			close(started)
			<-release
		})
	}()
	<-started
	errCh := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errCh <- pool.Do(ctx, func(*core.Checker, uint64) {})
		}()
	}
	close(release)
	wg.Wait()
	var canceled int
	for i := 0; i < 8; i++ {
		if err := <-errCh; err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("Do = %v, want context.Canceled or success", err)
			}
			canceled++
		}
	}
	// The queue holds 2 entries for a 1-worker pool, so with 8 canceled
	// submissions against a blocked worker some must take the ctx branch.
	if canceled == 0 {
		t.Log("no submission observed the canceled context (queue drained fast); still no deadlock")
	}
}
