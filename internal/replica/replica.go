// Package replica implements the replicated-kernel read path: N read-only
// copies of the primary checker's logical indices, each with its own BDD
// kernel, operation caches and evaluator, so constraint checks fan out
// across cores with zero shared mutable state. BDD kernels are not
// thread-safe and a shared unique table would serialize every lookup behind
// a lock; replicating the (physically small, structurally shared) index
// DAGs per worker removes all contention, the same trick factorised-
// representation query engines use to keep reads lock-free.
//
// Ownership rules:
//
//   - The primary checker is owned exclusively by whoever applies writes
//     (internal/service's worker goroutine). Replicas never see it.
//   - After each write batch the primary's owner freezes a Version — an
//     immutable snapshot (catalog clone + index copy into a fresh kernel) —
//     and Publishes it. Building a Version reads the primary, so it must
//     happen on the owner's goroutine.
//   - Pool workers each own one replica checker built from the current
//     Version. A worker notices a newer Version between requests and swaps
//     by rebuilding its checker from the new frozen snapshot; in-flight
//     work always finishes on the version it started with.
//   - A Version is never mutated after construction: its catalog is a
//     frozen clone and its kernel is only read (bdd.CopyTo does not touch
//     the source), so any number of workers may adopt from it concurrently.
package replica

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/obs"
)

// ErrClosed is returned by Do after the pool has been closed.
var ErrClosed = errors.New("replica: pool closed")

// Version is one immutable snapshot of the primary's catalog and indices.
// The zero epoch is never published; epochs increase with every handoff.
type Version struct {
	epoch  uint64
	frozen *core.Checker
	snaps  []core.IndexSnapshot
}

// NewVersion freezes the primary checker into an immutable snapshot tagged
// with epoch. It must be called from the goroutine that owns the primary
// (it reads the primary's catalog and kernel); the returned Version is safe
// to share. The snapshot deep-clones the catalog metadata while sharing the
// encoded row storage (rows are never mutated in place) and copies every
// index root into a fresh kernel, so later writes to the primary cannot
// reach it.
func NewVersion(primary *core.Checker, epoch uint64) (*Version, error) {
	frozen := core.New(primary.Catalog().Clone(), primary.Options())
	snaps := primary.SnapshotIndices()
	if err := frozen.AdoptIndices(primary.Store().Kernel(), snaps); err != nil {
		return nil, fmt.Errorf("replica: freezing epoch %d: %w", epoch, err)
	}
	return &Version{epoch: epoch, frozen: frozen, snaps: frozen.SnapshotIndices()}, nil
}

// Epoch returns the version's epoch.
func (v *Version) Epoch() uint64 { return v.epoch }

// newReplica builds a worker-private checker from the frozen snapshot: it
// shares the immutable catalog (checks only read it) but owns a fresh
// kernel, caches and evaluator populated by one CopyTo walk.
func (v *Version) newReplica() (*core.Checker, error) {
	chk := core.New(v.frozen.Catalog(), v.frozen.Options())
	if err := chk.AdoptIndices(v.frozen.Store().Kernel(), v.snaps); err != nil {
		return nil, fmt.Errorf("replica: materializing epoch %d: %w", v.epoch, err)
	}
	return chk, nil
}

// Stats is one worker's counters, published after every job and swap.
type Stats struct {
	// Worker is the worker's index in the pool.
	Worker int
	// Epoch is the version the worker currently serves; zero until its
	// first job.
	Epoch uint64
	// Jobs counts requests served by this worker.
	Jobs uint64
	// Kernel snapshots the worker's private kernel counters.
	Kernel bdd.Stats
	// Checker accumulates the worker's decision counters across every
	// version it has served (a swap rebuilds the checker; the retired
	// checker's counters are folded in rather than lost). Replicas never run
	// the SQL fallback, so SQLFallbacks stays zero here; rerouted
	// constraints are counted by the primary.
	Checker core.Stats
}

// Pool runs a fixed set of replica workers. Reads are submitted with Do;
// new index versions arrive via Publish and are picked up by each worker
// between requests.
type Pool struct {
	latest  atomic.Pointer[Version]
	jobs    chan job
	workers int

	mu     sync.RWMutex // guards send-vs-close on jobs
	closed bool
	wg     sync.WaitGroup

	swaps atomic.Uint64
	stats []atomic.Pointer[Stats]

	// metrics, when set, receives per-job latency observations. Written
	// once before traffic (SetMetrics), read by Do and the workers.
	metrics atomic.Pointer[Metrics]
}

// Metrics is the pool's hook into the observability layer: per-job queue
// wait (submission to worker pickup) and run time histograms. All fields
// may be nil to skip the corresponding observation.
type Metrics struct {
	// QueueWait observes submission-to-pickup latency per job.
	QueueWait *obs.Histogram
	// Run observes the job body's execution time (including any lazy
	// version materialization it triggered).
	Run *obs.Histogram
}

// SetMetrics installs latency instrumentation. Call it before the pool
// serves traffic; jobs already in flight may be recorded partially.
func (p *Pool) SetMetrics(m *Metrics) { p.metrics.Store(m) }

type job struct {
	fn        func(chk *core.Checker, epoch uint64)
	submitted time.Time // zero when the pool is uninstrumented
	err       chan error
}

// New starts a pool of n workers serving v. Workers materialize their
// replica lazily on first use, so constructing a pool is cheap.
func New(n int, v *Version) (*Pool, error) {
	if n < 1 {
		return nil, fmt.Errorf("replica: pool needs at least 1 worker, got %d", n)
	}
	if v == nil {
		return nil, errors.New("replica: pool needs an initial version")
	}
	p := &Pool{
		jobs:    make(chan job, 2*n),
		workers: n,
		stats:   make([]atomic.Pointer[Stats], n),
	}
	p.latest.Store(v)
	for i := 0; i < n; i++ {
		p.stats[i].Store(&Stats{Worker: i})
		p.wg.Add(1)
		go p.worker(i)
	}
	return p, nil
}

// Size returns the number of workers.
func (p *Pool) Size() int { return p.workers }

// Epoch returns the epoch of the latest published version.
func (p *Pool) Epoch() uint64 { return p.latest.Load().Epoch() }

// Swaps returns how many version handoffs workers have completed (the
// initial materialization of each worker counts as one).
func (p *Pool) Swaps() uint64 { return p.swaps.Load() }

// Publish hands a new version to the pool. Workers swap to it before their
// next request; in-flight requests finish on the version they started with.
// Publish never blocks and is safe to call concurrently with Do, though
// versions must be produced by a single owner to keep epochs monotonic.
func (p *Pool) Publish(v *Version) { p.latest.Store(v) }

// Stats returns the latest per-worker counters, in worker order.
func (p *Pool) Stats() []Stats {
	out := make([]Stats, p.workers)
	for i := range p.stats {
		out[i] = *p.stats[i].Load()
	}
	return out
}

// Do runs fn on some replica worker and waits for it to finish. fn receives
// the worker's private checker and the epoch it serves; it must not retain
// the checker past its return. Submission respects ctx, but once a worker
// has accepted the job Do waits for completion regardless of ctx — fn
// typically writes into the caller's locals. Do returns ErrClosed after
// Close, or the worker's materialization error if the replica could not be
// built.
func (p *Pool) Do(ctx context.Context, fn func(chk *core.Checker, epoch uint64)) error {
	jb := job{fn: fn, err: make(chan error, 1)}
	if p.metrics.Load() != nil {
		jb.submitted = time.Now()
	}
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return ErrClosed
	}
	// The read lock is held across the (possibly blocking) send so Close
	// cannot close the channel under a pending send: workers keep draining
	// until Close gets the write lock, so the send always completes.
	select {
	case p.jobs <- jb:
		p.mu.RUnlock()
	case <-ctx.Done():
		p.mu.RUnlock()
		return ctx.Err()
	}
	return <-jb.err
}

// Close stops the workers after draining already-accepted jobs. Do calls
// racing with Close either complete or return ErrClosed.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.jobs)
	p.mu.Unlock()
	p.wg.Wait()
}

func (p *Pool) worker(i int) {
	defer p.wg.Done()
	var cur *Version
	var chk *core.Checker
	var jobs uint64
	var retired core.Stats // counters of checkers discarded by swaps
	for jb := range p.jobs {
		m := p.metrics.Load()
		var picked time.Time
		if m != nil {
			picked = time.Now()
			if m.QueueWait != nil && !jb.submitted.IsZero() {
				m.QueueWait.Observe(picked.Sub(jb.submitted))
			}
		}
		if latest := p.latest.Load(); cur != latest {
			next, err := latest.newReplica()
			if err != nil && chk == nil {
				// No fallback version to serve: fail this job.
				jb.err <- err
				continue
			}
			if err == nil {
				if chk != nil {
					retired = addStats(retired, chk.Stats())
				}
				cur, chk = latest, next
				p.swaps.Add(1)
			}
			// On error with a previous version in hand, keep serving it;
			// the next publish retries the swap.
		}
		jb.fn(chk, cur.epoch)
		if m != nil && m.Run != nil {
			m.Run.Observe(time.Since(picked))
		}
		jobs++
		p.stats[i].Store(&Stats{
			Worker: i, Epoch: cur.epoch, Jobs: jobs,
			Kernel: chk.KernelStats(), Checker: addStats(retired, chk.Stats()),
		})
		jb.err <- nil
	}
}

func addStats(a, b core.Stats) core.Stats {
	a.BDDChecks += b.BDDChecks
	a.FDFastPath += b.FDFastPath
	a.SQLFallbacks += b.SQLFallbacks
	a.Errors += b.Errors
	return a
}
