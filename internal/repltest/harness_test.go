package repltest

// harness_test.go wires real leaders and followers together for the fault
// suite: fixture construction, node lifecycle (a service.Server behind an
// httptest listener over its own data directory), HTTP drivers, convergence
// waits, and the verdict/witness identity assertion.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/difftest"
	"repro/internal/logic"
	"repro/internal/relation"
	"repro/internal/service"
	"repro/internal/store"
)

const fixtureRules = `
	constraint nj_codes:
	    forall c, a: CUST(c, a, "NJ") => a in {"201", "973", "908"}.
	constraint supp_city_known:
	    forall c, s: SUPP(c, s) => exists a, s2: CUST(c, a, s2).
	constraint toronto_ontario:
	    forall a, s: CUST("Toronto", a, s) => s = "Ontario".
`

var (
	cities = []string{"Toronto", "Oshawa", "Newark", "Trenton", "Buffalo", "Albany"}
	codes  = []string{"416", "647", "905", "973", "201", "908", "716", "518"}
	states = []string{"Ontario", "NJ", "NY"}
)

// buildFixture creates the two-table checker the suite replicates, with
// nRows random CUST rows and nRows/2 SUPP rows, plus its constraint set.
func buildFixture(t testing.TB, rng *rand.Rand, nRows int) (*core.Checker, []logic.Constraint) {
	t.Helper()
	cat := relation.NewCatalog()
	cust, err := cat.CreateTable("CUST", []relation.Column{
		{Name: "city"}, {Name: "areacode"}, {Name: "state"},
	})
	if err != nil {
		t.Fatal(err)
	}
	supp, err := cat.CreateTable("SUPP", []relation.Column{
		{Name: "city"}, {Name: "state"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nRows; i++ {
		cust.Insert(cities[rng.Intn(len(cities))], codes[rng.Intn(len(codes))], states[rng.Intn(len(states))])
	}
	for i := 0; i < nRows/2; i++ {
		supp.Insert(cities[rng.Intn(len(cities))], states[rng.Intn(len(states))])
	}
	chk := core.New(cat, core.Options{})
	for _, name := range []string{"CUST", "SUPP"} {
		if _, err := chk.BuildIndex(name, name, nil, core.OrderProbConverge); err != nil {
			t.Fatal(err)
		}
	}
	cts, err := logic.ParseConstraints(fixtureRules)
	if err != nil {
		t.Fatal(err)
	}
	return chk, cts
}

// node is one running server: store, service, HTTP listener.
type node struct {
	dir  string
	st   *store.Store
	srv  *service.Server
	hs   *httptest.Server
	once sync.Once
}

func (n *node) URL() string { return n.hs.URL }

// stop shuts the node down: service first (so its tail loop stops polling
// and in-flight long-polls it serves unblock on quit), then the listener,
// then the store. Idempotent, so tests can stop explicitly and still leave
// the cleanup hook in place.
func (n *node) stop() {
	n.once.Do(func() {
		n.srv.Close()
		n.hs.Close()
		n.st.Close()
	})
}

// startLeader builds a fixture checker, seals it as the epoch-1 snapshot in
// a fresh data directory, and serves it. snapshotEvery and retain shape the
// pruning pressure a scenario wants.
func startLeader(t *testing.T, rng *rand.Rand, snapshotEvery, retain int) *node {
	t.Helper()
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{Fsync: store.FsyncOff, Retain: retain})
	if err != nil {
		t.Fatal(err)
	}
	chk, cts := buildFixture(t, rng, 250)
	if err := st.WriteSnapshot(chk, store.RenderConstraints(cts), 1); err != nil {
		st.Close()
		t.Fatal(err)
	}
	srv, err := service.New(chk, cts, service.Options{
		Store:                st,
		SnapshotEveryBatches: snapshotEvery,
		InitialEpoch:         1,
	})
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	n := &node{dir: dir, st: st, srv: srv, hs: httptest.NewServer(srv.Handler())}
	t.Cleanup(n.stop)
	return n
}

// startFollower opens (or reopens) dir as a follower of leaderURL: an empty
// directory bootstraps from the leader's newest snapshot exactly like
// cvserved's boot path, a populated one resumes from its local artifacts.
func startFollower(t *testing.T, leaderURL, dir string, fo service.FollowerOptions) *node {
	t.Helper()
	st, err := store.Open(dir, store.Options{Fsync: store.FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	if !st.HasSnapshot() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		_, ferr := service.FetchSnapshot(ctx, nil, leaderURL, st)
		cancel()
		if ferr != nil {
			st.Close()
			t.Fatalf("bootstrapping follower from %s: %v", leaderURL, ferr)
		}
	}
	chk, text, info, err := st.Recover(core.Options{})
	if err != nil {
		st.Close()
		t.Fatalf("recovering follower state: %v", err)
	}
	cts, err := logic.ParseConstraints(text)
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	epoch := info.LastEpoch
	if epoch == 0 {
		epoch = 1
	}
	fo.URL = leaderURL
	if fo.PollWait == 0 {
		fo.PollWait = 250 * time.Millisecond
	}
	if fo.Backoff == 0 {
		fo.Backoff = 10 * time.Millisecond
	}
	srv, err := service.New(chk, cts, service.Options{
		Store:        st,
		InitialEpoch: epoch,
		Follower:     &fo,
	})
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	n := &node{dir: dir, st: st, srv: srv, hs: httptest.NewServer(srv.Handler())}
	t.Cleanup(n.stop)
	return n
}

// postJSON posts body to base+path and decodes a 200 reply into out (when
// non-nil). It returns the HTTP status so callers can assert refusals.
func postJSON(t *testing.T, base, path string, body, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: reading reply: %v", path, err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("POST %s: decoding reply %q: %v", path, data, err)
		}
	}
	return resp.StatusCode
}

func getStatsz(t *testing.T, base string) service.StatszResponse {
	t.Helper()
	resp, err := http.Get(base + "/statsz")
	if err != nil {
		t.Fatalf("GET /statsz: %v", err)
	}
	defer resp.Body.Close()
	var out service.StatszResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("GET /statsz: %v", err)
	}
	return out
}

// driveUpdates applies batches of random inserts through the leader's
// public /update, each batch also deleting one row it inserted earlier in
// the same batch so both operations replicate without ever targeting an
// absent tuple.
func driveUpdates(t *testing.T, base string, rng *rand.Rand, batches, perBatch int) {
	t.Helper()
	for i := 0; i < batches; i++ {
		ups := make([]service.UpdateTuple, 0, perBatch+1)
		for j := 0; j < perBatch; j++ {
			if rng.Intn(2) == 0 {
				ups = append(ups, service.UpdateTuple{Table: "CUST", Op: "insert", Values: []string{
					cities[rng.Intn(len(cities))], codes[rng.Intn(len(codes))], states[rng.Intn(len(states))]}})
			} else {
				ups = append(ups, service.UpdateTuple{Table: "SUPP", Op: "insert", Values: []string{
					cities[rng.Intn(len(cities))], states[rng.Intn(len(states))]}})
			}
		}
		doomed := ups[rng.Intn(len(ups))]
		ups = append(ups, service.UpdateTuple{Table: doomed.Table, Op: "delete", Values: doomed.Values})
		var ur service.UpdateResponse
		if st := postJSON(t, base, "/update", service.UpdateRequest{Updates: ups}, &ur); st != http.StatusOK {
			t.Fatalf("/update batch %d: status %d", i, st)
		}
		if ur.Error != "" {
			t.Fatalf("/update batch %d: %s", i, ur.Error)
		}
	}
}

// waitFor polls cond until it reports done or the deadline passes.
func waitFor(t *testing.T, what string, timeout time.Duration, cond func() (bool, string)) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		ok, detail := cond()
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s (last: %s)", what, detail)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitConverged blocks until the follower's applied epoch reaches want.
func waitConverged(t *testing.T, followerURL string, want uint64) {
	t.Helper()
	waitFor(t, fmt.Sprintf("follower to reach epoch %d", want), 20*time.Second, func() (bool, string) {
		st := getStatsz(t, followerURL)
		return st.Epoch >= want, fmt.Sprintf("follower at epoch %d", st.Epoch)
	})
}

// assertSameAnswers holds two servers against each other over their public
// APIs: every registered constraint must carry the same verdict, and every
// violated one the identical witness set (difftest's canonical set diff).
func assertSameAnswers(t *testing.T, leaderURL, followerURL string) {
	t.Helper()
	names := getStatsz(t, leaderURL).Constraints
	if len(names) == 0 {
		t.Fatal("leader registered no constraints")
	}
	req := service.CheckRequest{Constraints: names}
	var lres, fres service.CheckResponse
	if st := postJSON(t, leaderURL, "/check", req, &lres); st != http.StatusOK {
		t.Fatalf("leader /check: status %d", st)
	}
	if st := postJSON(t, followerURL, "/check", req, &fres); st != http.StatusOK {
		t.Fatalf("follower /check: status %d", st)
	}
	verdicts := make(map[string]bool, len(lres.Results))
	for _, r := range lres.Results {
		if r.Error != "" {
			t.Fatalf("leader check %s: %s", r.Name, r.Error)
		}
		verdicts[r.Name] = r.Violated
	}
	for _, r := range fres.Results {
		if r.Error != "" {
			t.Fatalf("follower check %s: %s", r.Name, r.Error)
		}
		want, ok := verdicts[r.Name]
		if !ok {
			t.Fatalf("follower reported unknown constraint %s", r.Name)
		}
		if r.Violated != want {
			t.Fatalf("constraint %s: leader violated=%v, follower violated=%v", r.Name, want, r.Violated)
		}
	}
	for name, violated := range verdicts {
		if !violated {
			continue
		}
		lw := fetchWitnesses(t, leaderURL, name)
		fw := fetchWitnesses(t, followerURL, name)
		if diff := difftest.SetDiff(difftest.WitnessSet(lw), difftest.WitnessSet(fw)); diff != "" {
			t.Fatalf("constraint %s: witness sets differ: %s (leader %d, follower %d)", name, diff, len(lw), len(fw))
		}
	}
}

func fetchWitnesses(t *testing.T, base, constraint string) []core.Witness {
	t.Helper()
	var wr service.WitnessResponse
	if st := postJSON(t, base, "/witnesses", service.WitnessRequest{Constraint: constraint, Limit: 10000}, &wr); st != http.StatusOK {
		t.Fatalf("%s /witnesses(%s): status %d", base, constraint, st)
	}
	out := make([]core.Witness, len(wr.Witnesses))
	for i, w := range wr.Witnesses {
		out[i] = core.Witness{Vars: w.Vars, Values: w.Values}
	}
	return out
}

// faultProxy is a reverse proxy in front of a leader that can corrupt
// snapshot streams: "flip" XORs one byte mid-body (breaking the CRC under
// an honest Content-Length), "truncate" promises the full length but cuts
// the stream halfway. Everything else — and /wal always — passes through.
type faultProxy struct {
	hs     *httptest.Server
	target string

	mu   sync.Mutex
	mode string // "", "flip" or "truncate"
	left int    // corruptions remaining; negative means every time
}

func newFaultProxy(t *testing.T, target string) *faultProxy {
	p := &faultProxy{target: target}
	p.hs = httptest.NewServer(http.HandlerFunc(p.serve))
	t.Cleanup(p.hs.Close)
	return p
}

func (p *faultProxy) URL() string { return p.hs.URL }

// corrupt arms the proxy: the next n snapshot responses (all of them when
// n < 0) are damaged with mode. corrupt("", 0) disarms it.
func (p *faultProxy) corrupt(mode string, n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.mode, p.left = mode, n
}

// takeFault consumes one armed corruption for a snapshot request.
func (p *faultProxy) takeFault(path string) string {
	if !strings.HasPrefix(path, "/snapshot/") {
		return ""
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.mode == "" || p.left == 0 {
		return ""
	}
	if p.left > 0 {
		p.left--
	}
	return p.mode
}

func (p *faultProxy) serve(w http.ResponseWriter, r *http.Request) {
	req, err := http.NewRequestWithContext(r.Context(), r.Method, p.target+r.URL.RequestURI(), r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	fault := p.takeFault(r.URL.Path)
	if fault == "flip" && len(body) > 0 {
		body[len(body)/2] ^= 0x01
	}
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(resp.StatusCode)
	if fault == "truncate" && len(body) > 1 {
		// Promise the full body, deliver half: the connection dies short and
		// the client's verified install sees fewer bytes than declared.
		w.Write(body[:len(body)/2])
		return
	}
	w.Write(body)
}
