// Package repltest holds the end-to-end fault-injection suite for cvserved's
// leader/follower replication: a real leader and a real follower run their
// full HTTP stacks on loopback listeners, updates are driven through the
// leader's public API, and every fault the design claims to survive —
// follower restarts mid-tail, corrupted or truncated snapshot streams, a
// leader that pruned past the follower's position, a leader too far ahead of
// a MaxLag-bounded replica — is injected for real (a byte-flipping reverse
// proxy, process-style restarts over the same data directory, aggressive
// snapshot retention) and must end where replication promises: the follower
// reaches the leader's epoch and answers every constraint with the identical
// verdict and witness set.
//
// The package contains tests only; the CI replication-smoke job covers the
// remaining scenario these in-process tests cannot (kill -9 of a live
// leader process).
package repltest
