package repltest

// repl_test.go is the scenario suite: each test stands up a real leader (and
// usually a real follower) and injects one class of fault the replication
// design claims to survive, always ending in the same two assertions —
// epochs converge and the public APIs answer identically.

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/store"
)

// TestFollowerConvergesAndServesIdenticalAnswers is the happy path: a
// follower bootstraps from a live leader's snapshot, tails its WAL, and
// must answer /check and /witnesses exactly like the leader — both for the
// bootstrapped state and for batches that arrive while it is tailing. It
// also pins the write refusal (421 naming the leader) and that reads keep
// working after the leader goes away.
func TestFollowerConvergesAndServesIdenticalAnswers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	leader := startLeader(t, rng, 1000, 4)
	driveUpdates(t, leader.URL(), rng, 5, 8)

	fol := startFollower(t, leader.URL(), t.TempDir(), service.FollowerOptions{})
	waitConverged(t, fol.URL(), getStatsz(t, leader.URL()).Epoch)
	assertSameAnswers(t, leader.URL(), fol.URL())

	// New batches must flow through the tail path, not just the bootstrap.
	driveUpdates(t, leader.URL(), rng, 5, 8)
	waitConverged(t, fol.URL(), getStatsz(t, leader.URL()).Epoch)
	assertSameAnswers(t, leader.URL(), fol.URL())

	fs := getStatsz(t, fol.URL()).Follower
	if fs == nil {
		t.Fatal("follower /statsz has no follower block")
	}
	if fs.TailRecords == 0 {
		t.Fatalf("follower applied %d batches but reports zero tailed records", 10)
	}

	// Writes are refused with 421, naming the leader.
	b, err := json.Marshal(service.UpdateRequest{Updates: []service.UpdateTuple{
		{Table: "CUST", Op: "insert", Values: []string{"Newark", "973", "NJ"}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(fol.URL()+"/update", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("follower /update: status %d, want %d", resp.StatusCode, http.StatusMisdirectedRequest)
	}
	if got := resp.Header.Get(service.HeaderLeader); got != leader.URL() {
		t.Fatalf("follower /update %s header = %q, want %q", service.HeaderLeader, got, leader.URL())
	}

	// The leader dying must not take reads down with it.
	leader.stop()
	var cr service.CheckResponse
	if st := postJSON(t, fol.URL(), "/check", service.CheckRequest{Constraints: []string{"nj_codes"}}, &cr); st != http.StatusOK {
		t.Fatalf("follower /check after leader death: status %d", st)
	}
	if len(cr.Results) != 1 || cr.Results[0].Error != "" {
		t.Fatalf("follower /check after leader death: %+v", cr.Results)
	}
}

// TestFollowerRestartResumesFromLocalWAL kills a follower mid-stream and
// restarts it over the same data directory: the local snapshot + WAL must
// carry it back to its last applied epoch with no snapshot refetch, and
// tailing resumes from there.
func TestFollowerRestartResumesFromLocalWAL(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	leader := startLeader(t, rng, 1000, 4)
	driveUpdates(t, leader.URL(), rng, 4, 6)

	dir := t.TempDir()
	fol := startFollower(t, leader.URL(), dir, service.FollowerOptions{})
	waitConverged(t, fol.URL(), getStatsz(t, leader.URL()).Epoch)
	fol.stop()

	// The leader moves on while the follower is down.
	driveUpdates(t, leader.URL(), rng, 4, 6)

	fol2 := startFollower(t, leader.URL(), dir, service.FollowerOptions{})
	waitConverged(t, fol2.URL(), getStatsz(t, leader.URL()).Epoch)
	fs := getStatsz(t, fol2.URL()).Follower
	if fs == nil {
		t.Fatal("restarted follower /statsz has no follower block")
	}
	if fs.SnapshotFetches != 0 {
		t.Fatalf("restart fetched %d snapshots; a local WAL resume needs none", fs.SnapshotFetches)
	}
	if fs.Rebootstraps != 0 {
		t.Fatalf("restart re-bootstrapped %d times; the local log was intact", fs.Rebootstraps)
	}
	assertSameAnswers(t, leader.URL(), fol2.URL())
}

// TestSnapshotCorruptionDetectedAndRefetched streams the bootstrap snapshot
// through a proxy that byte-flips or truncates it: both damaged streams
// must be rejected without installing anything, and a clean refetch through
// the same proxy must bootstrap a follower that converges normally.
func TestSnapshotCorruptionDetectedAndRefetched(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	leader := startLeader(t, rng, 1000, 4)
	driveUpdates(t, leader.URL(), rng, 3, 6)
	proxy := newFaultProxy(t, leader.URL())

	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{Fsync: store.FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, mode := range []string{"flip", "truncate"} {
		proxy.corrupt(mode, -1)
		if _, err := service.FetchSnapshot(ctx, nil, proxy.URL(), st); err == nil {
			t.Fatalf("%s-damaged snapshot stream was accepted", mode)
		}
		if st.HasSnapshot() {
			t.Fatalf("%s-damaged snapshot stream left an installed snapshot behind", mode)
		}
	}
	proxy.corrupt("", 0)
	epoch, err := service.FetchSnapshot(ctx, nil, proxy.URL(), st)
	if err != nil {
		t.Fatalf("clean refetch after corruption: %v", err)
	}
	if epoch == 0 || !st.HasSnapshot() {
		t.Fatalf("clean refetch installed nothing (epoch %d)", epoch)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	fol := startFollower(t, proxy.URL(), dir, service.FollowerOptions{})
	waitConverged(t, fol.URL(), getStatsz(t, leader.URL()).Epoch)
	assertSameAnswers(t, leader.URL(), fol.URL())
}

// TestLeaderPruneForces410Rebootstrap parks a follower, lets an aggressively
// pruning leader (snapshot every batch, retain one) advance past its WAL
// position, and restarts it: the leader answers its tail with 410, forcing
// a snapshot re-bootstrap — whose first fetch the proxy corrupts, so the
// retry path runs too — after which the follower must converge.
func TestLeaderPruneForces410Rebootstrap(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	leader := startLeader(t, rng, 1, 1)
	proxy := newFaultProxy(t, leader.URL())

	dir := t.TempDir()
	fol := startFollower(t, proxy.URL(), dir, service.FollowerOptions{})
	waitConverged(t, fol.URL(), getStatsz(t, leader.URL()).Epoch)
	fol.stop()

	// Every batch seals a snapshot and resets the WAL; with one snapshot
	// retained, three batches leave nothing the parked follower could tail.
	driveUpdates(t, leader.URL(), rng, 3, 5)

	proxy.corrupt("flip", 1)
	fol2 := startFollower(t, proxy.URL(), dir, service.FollowerOptions{})
	waitConverged(t, fol2.URL(), getStatsz(t, leader.URL()).Epoch)

	fs := getStatsz(t, fol2.URL()).Follower
	if fs == nil {
		t.Fatal("follower /statsz has no follower block")
	}
	if fs.Rebootstraps == 0 {
		t.Fatal("pruned leader did not force a re-bootstrap")
	}
	if fs.SnapshotFetchFailures == 0 {
		t.Fatal("corrupted re-bootstrap fetch was not counted as a failure")
	}
	if fs.SnapshotFetches <= fs.SnapshotFetchFailures {
		t.Fatalf("no successful snapshot fetch (%d fetches, %d failures)", fs.SnapshotFetches, fs.SnapshotFetchFailures)
	}
	assertSameAnswers(t, leader.URL(), fol2.URL())
}

// TestMaxLagStalenessRefusal pins the staleness contract with a stub leader
// that reports a far-future epoch while handing out batches the follower
// cannot apply (and no snapshot to re-bootstrap from): live reads must be
// refused with 503 once the lag bound is crossed, while historical
// point-in-time reads keep answering from retained epochs.
func TestMaxLagStalenessRefusal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	chk, cts := buildFixture(t, rng, 200)
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{Fsync: store.FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshot(chk, store.RenderConstraints(cts), 1); err != nil {
		t.Fatal(err)
	}
	// One applied epoch past the snapshot, so epoch 1 is a historical read
	// (?epoch= at the current epoch counts as live) once the follower boots.
	if err := st.AppendBatch(2, []core.Update{
		{Table: "CUST", Op: core.UpdateInsert, Values: []string{"Newark", "973", "NJ"}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/wal":
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(service.WALTailResponse{
				From:  2,
				Epoch: 99,
				Batches: []service.WALBatch{{Epoch: 7, Updates: []service.UpdateTuple{
					{Table: "NOSUCH", Op: "insert", Values: []string{"x"}},
				}}},
			})
		default:
			http.Error(w, "stub leader has nothing else", http.StatusInternalServerError)
		}
	}))
	t.Cleanup(stub.Close)

	fol := startFollower(t, stub.URL, dir, service.FollowerOptions{MaxLag: 3})
	waitFor(t, "follower to observe the stub leader's epoch", 20*time.Second, func() (bool, string) {
		fs := getStatsz(t, fol.URL()).Follower
		if fs == nil {
			return false, "no follower block"
		}
		return fs.LeaderEpoch == 99, fs.State
	})

	req := service.CheckRequest{Constraints: []string{"nj_codes"}}
	if st := postJSON(t, fol.URL(), "/check", req, nil); st != http.StatusServiceUnavailable {
		t.Fatalf("live /check on a stale follower: status %d, want 503", st)
	}
	wreq := service.WitnessRequest{Constraint: "nj_codes", Limit: 10}
	if st := postJSON(t, fol.URL(), "/witnesses", wreq, nil); st != http.StatusServiceUnavailable {
		t.Fatalf("live /witnesses on a stale follower: status %d, want 503", st)
	}
	var cr service.CheckResponse
	if st := postJSON(t, fol.URL(), "/check?epoch=1", req, &cr); st != http.StatusOK {
		t.Fatalf("historical /check?epoch=1 on a stale follower: status %d, want 200", st)
	}
	if cr.Epoch != 1 || len(cr.Results) != 1 || cr.Results[0].Error != "" {
		t.Fatalf("historical /check?epoch=1: %+v", cr)
	}
}
