// Package ordering implements the paper's two BDD variable-ordering
// heuristics over relational data (§3) plus the random and exhaustive
// baselines used in the evaluation.
//
// Orderings are permutations of a table's column indices; the index layer
// turns an ordering into a layout of finite-domain blocks (the attributes'
// blocks are placed consecutively in the chosen order, as Theorem 1
// prescribes for product-structured relations).
package ordering

import (
	"math/rand"

	"repro/internal/relation"
	"repro/internal/stats"
)

// ActiveDomainSizes returns the per-column active-domain sizes of t, the
// default domain sizes for the Φ measure.
func ActiveDomainSizes(t *relation.Table) []int {
	out := make([]int, t.NumCols())
	for i := range out {
		out[i] = t.ActiveDomainSize(i)
	}
	return out
}

// MaxInfGain returns the ordering produced by the information-gain greedy of
// §3.1 (Figure 1): the first attribute minimizes the entropy H(v); each
// following attribute maximizes the information gain against the chosen
// prefix, which for a fixed prefix is the attribute minimizing the
// conditional entropy H(v | prefix).
func MaxInfGain(t *relation.Table) []int {
	n := t.NumCols()
	order := make([]int, 0, n)
	used := make([]bool, n)
	// First attribute: minimal entropy.
	best, bestH := -1, 0.0
	for v := 0; v < n; v++ {
		h := stats.Entropy(t, []int{v})
		if best == -1 || h < bestH {
			best, bestH = v, h
		}
	}
	order = append(order, best)
	used[best] = true
	for len(order) < n {
		best, bestH = -1, 0.0
		for v := 0; v < n; v++ {
			if used[v] {
				continue
			}
			h := stats.CondEntropy(t, order, v)
			if best == -1 || h < bestH {
				best, bestH = v, h
			}
		}
		order = append(order, best)
		used[best] = true
	}
	return order
}

// ProbConverge returns the ordering produced by the probability-convergence
// greedy of §3.2: each step appends the attribute whose extended prefix has
// the smallest Φ measure, driving Φ to 0 (membership decided) as early as
// possible. domSizes may be nil, in which case the active-domain sizes of t
// are used.
func ProbConverge(t *relation.Table, domSizes []int) []int {
	if domSizes == nil {
		domSizes = ActiveDomainSizes(t)
	}
	n := t.NumCols()
	order := make([]int, 0, n)
	used := make([]bool, n)
	for len(order) < n {
		best, bestPhi := -1, 0.0
		for v := 0; v < n; v++ {
			if used[v] {
				continue
			}
			phi := stats.Phi(t, append(order, v), domSizes)
			if best == -1 || phi < bestPhi {
				best, bestPhi = v, phi
			}
		}
		order = append(order, best)
		used[best] = true
	}
	return order
}

// Random returns a uniformly random permutation of n columns.
func Random(rng *rand.Rand, n int) []int {
	return rng.Perm(n)
}

// Identity returns the schema ordering 0..n-1.
func Identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Permutations returns every permutation of 0..n-1 in lexicographic order.
// It is meant for the exhaustive-optimal baseline on small attribute counts
// (n! permutations).
func Permutations(n int) [][]int {
	var out [][]int
	perm := Identity(n)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int(nil), perm...))
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return out
}
