package ordering_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/index"
	"repro/internal/ordering"
	"repro/internal/relation"
)

func TestPermutations(t *testing.T) {
	perms := ordering.Permutations(3)
	if len(perms) != 6 {
		t.Fatalf("got %d permutations", len(perms))
	}
	seen := map[string]bool{}
	for _, p := range perms {
		if len(p) != 3 {
			t.Fatal("wrong length")
		}
		k := fmt.Sprint(p)
		if seen[k] {
			t.Fatalf("duplicate permutation %v", p)
		}
		seen[k] = true
		used := map[int]bool{}
		for _, v := range p {
			if v < 0 || v >= 3 || used[v] {
				t.Fatalf("not a permutation: %v", p)
			}
			used[v] = true
		}
	}
}

func TestRandomIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := ordering.Random(rng, 10)
	used := make([]bool, 10)
	for _, v := range p {
		if used[v] {
			t.Fatal("not a permutation")
		}
		used[v] = true
	}
}

func TestIdentity(t *testing.T) {
	if got := ordering.Identity(3); got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("Identity = %v", got)
	}
}

func TestHeuristicsReturnPermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cat := relation.NewCatalog()
	tbl, err := datagen.KProd(cat, "R", datagen.ProdSpec{
		Products: 1, Attrs: 4, Tuples: 500, DomSize: 10,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for name, order := range map[string][]int{
		"MaxInfGain":   ordering.MaxInfGain(tbl),
		"ProbConverge": ordering.ProbConverge(tbl, nil),
	} {
		if len(order) != 4 {
			t.Fatalf("%s: wrong length %d", name, len(order))
		}
		used := make([]bool, 4)
		for _, v := range order {
			if v < 0 || v >= 4 || used[v] {
				t.Fatalf("%s: not a permutation: %v", name, order)
			}
			used[v] = true
		}
	}
}

// bddSize builds a throwaway index for the projection under the given
// ordering and returns its node count — the measurement behind Figures 2-3.
func bddSize(t *testing.T, tbl *relation.Table, order []int) int {
	t.Helper()
	store := index.NewStore(index.Options{})
	cols := make([]int, tbl.NumCols())
	for i := range cols {
		cols[i] = i
	}
	ix, err := store.Build("X", tbl, cols, order)
	if err != nil {
		t.Fatal(err)
	}
	return ix.NodeCount()
}

// TestProbConvergeNearOptimalOnProducts is the small-scale version of the
// paper's Figure 3 claim: on product-structured relations Prob-Converge
// picks an ordering whose BDD is close to the exhaustive optimum.
func TestProbConvergeNearOptimalOnProducts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		cat := relation.NewCatalog()
		tbl, err := datagen.KProd(cat, "R", datagen.ProdSpec{
			Products: 1, Attrs: 5, Tuples: 4000, DomSize: 12,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		best := 1 << 30
		worst := 0
		for _, perm := range ordering.Permutations(5) {
			size := bddSize(t, tbl, perm)
			if size < best {
				best = size
			}
			if size > worst {
				worst = size
			}
		}
		pc := bddSize(t, tbl, ordering.ProbConverge(tbl, nil))
		beta := float64(pc) / float64(best)
		t.Logf("trial %d: optimal=%d worst=%d prob-converge=%d (β=%.2f)", trial, best, worst, pc, beta)
		// The paper reports β < 1.5 on every run; allow 2.0 at this small
		// scale to avoid flakiness.
		if beta > 2.0 {
			t.Errorf("trial %d: Prob-Converge β=%.2f too far from optimal (pc=%d, best=%d)",
				trial, beta, pc, best)
		}
	}
}

// TestOrderingEffectShrinksWithStructure reproduces the Figure 2(a) trend:
// the best:worst BDD-size ratio is large for 1-PROD and near 1 for RANDOM.
func TestOrderingEffectShrinksWithStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ratio := func(products int) float64 {
		cat := relation.NewCatalog()
		tbl, err := datagen.KProd(cat, "R", datagen.ProdSpec{
			Products: products, Attrs: 5, Tuples: 4000, DomSize: 12,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		best, worst := 1<<30, 0
		for _, perm := range ordering.Permutations(5) {
			size := bddSize(t, tbl, perm)
			if size < best {
				best = size
			}
			if size > worst {
				worst = size
			}
		}
		return float64(worst) / float64(best)
	}
	r1 := ratio(1)
	rRand := ratio(0)
	t.Logf("best:worst ratio — 1-PROD: %.2f, RANDOM: %.2f", r1, rRand)
	if r1 < 1.5 {
		t.Errorf("1-PROD ordering effect too small: %.2f", r1)
	}
	if rRand > 1.5 {
		t.Errorf("RANDOM ordering effect too large: %.2f", rRand)
	}
	if r1 <= rRand {
		t.Errorf("structure should amplify the ordering effect: 1-PROD %.2f <= RANDOM %.2f", r1, rRand)
	}
}
