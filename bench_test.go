// Package repro's benchmark harness: one testing.B benchmark per table and
// figure of the paper's evaluation (§5), so `go test -bench=. -benchmem`
// regenerates the performance side of every experiment. cmd/cvbench prints
// the corresponding full tables; see EXPERIMENTS.md for paper-vs-measured.
package repro

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/fdd"
	"repro/internal/index"
	"repro/internal/logic"
	"repro/internal/ordering"
	"repro/internal/relation"
	"repro/internal/replica"
	"repro/internal/sqlengine"
)

// ---- shared fixtures -------------------------------------------------

type customerFixture struct {
	cat  *relation.Catalog
	data *datagen.CustomerData
}

var customers = sync.OnceValue(func() *customerFixture {
	rng := rand.New(rand.NewSource(1))
	cat := relation.NewCatalog()
	data, err := datagen.Customers(cat, "CUST", datagen.CustomerSpec{Tuples: 100000, NoiseRate: 0.001}, rng)
	if err != nil {
		panic(err)
	}
	return &customerFixture{cat: cat, data: data}
})

var prodFamily = sync.OnceValue(func() *relation.Table {
	rng := rand.New(rand.NewSource(2))
	cat := relation.NewCatalog()
	t, err := datagen.KProd(cat, "R", datagen.ProdSpec{Products: 1, Attrs: 5, Tuples: 50000, DomSize: 100}, rng)
	if err != nil {
		panic(err)
	}
	return t
})

// ---- Figure 2(a): ordering effect on index size ----------------------

// BenchmarkFig2aOrderingEffect builds the 1-PROD index under the
// Prob-Converge ordering and under its reverse (a deliberately bad order),
// the two endpoints of the Figure 2(a) curve.
func BenchmarkFig2aOrderingEffect(b *testing.B) {
	t := prodFamily()
	good := ordering.ProbConverge(t, nil)
	bad := make([]int, len(good))
	for i, v := range good {
		bad[len(good)-1-i] = v
	}
	cols := []int{0, 1, 2, 3, 4}
	for _, tc := range []struct {
		name  string
		order []int
	}{{"prob-converge", good}, {"reversed", bad}} {
		b.Run(tc.name, func(b *testing.B) {
			nodes := 0
			for i := 0; i < b.N; i++ {
				store := index.NewStore(index.Options{})
				ix, err := store.Build("R", t, cols, tc.order)
				if err != nil {
					b.Fatal(err)
				}
				nodes = ix.NodeCount()
			}
			b.ReportMetric(float64(nodes), "nodes")
		})
	}
}

// ---- Figure 4: index construction and maintenance --------------------

func BenchmarkFig4aConstruction(b *testing.B) {
	fx := customers()
	for _, tc := range []struct {
		name string
		cols []int
	}{{"ncs29vars", []int{0, 2, 3}}, {"csz35vars", []int{2, 3, 4}}} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				store := index.NewStore(index.Options{})
				if _, err := store.Build("X", fx.data.Table, tc.cols, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig4bUpdate(b *testing.B) {
	fx := customers()
	for _, tc := range []struct {
		name string
		cols []int
	}{{"ncs29vars", []int{0, 2, 3}}, {"csz35vars", []int{2, 3, 4}}} {
		b.Run(tc.name, func(b *testing.B) {
			store := index.NewStore(index.Options{})
			ix, err := store.Build("X", fx.data.Table, tc.cols, nil)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(3))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				row := fx.data.Table.Row(rng.Intn(fx.data.Table.Len()))
				if err := ix.Delete(row, false); err != nil {
					b.Fatal(err)
				}
				if err := ix.Insert(row); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Figure 5(a): membership constraints, BDD vs SQL ------------------

func fig5aChecker(b *testing.B) (*core.Checker, logic.Constraint) {
	b.Helper()
	fx := customers()
	// The benchmark loops one evaluation thousands of times; give it more
	// headroom than the paper's default 10^6-node budget so the abort path
	// (measured separately by BenchmarkThresholdFill) does not trigger.
	chk := core.New(fx.cat, core.Options{NodeBudget: 8_000_000})
	if chk.Store().Index("CA") == nil {
		if _, err := chk.BuildIndex("CA", "CUST", []string{"city", "areacode"}, core.OrderProbConverge); err != nil {
			b.Fatal(err)
		}
	}
	if fx.cat.Table("CONS") == nil {
		rng := rand.New(rand.NewSource(4))
		if _, err := datagen.MembershipConstraints(fx.cat, "CONS", fx.data, 10000, rng); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := chk.BuildIndex("CONS", "CONS", nil, core.OrderSchema); err != nil {
		b.Fatal(err)
	}
	f, err := logic.Parse(`forall c, a: CA(c, a) and (exists x: CONS(c, x)) => CONS(c, a)`)
	if err != nil {
		b.Fatal(err)
	}
	return chk, logic.Constraint{Name: "membership", F: f}
}

func BenchmarkFig5aMembership(b *testing.B) {
	b.Run("bdd", func(b *testing.B) {
		chk, ct := fig5aChecker(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if res := chk.CheckOne(ct); res.Err != nil || res.FellBack {
				b.Fatalf("%+v", res)
			}
		}
	})
	b.Run("sql", func(b *testing.B) {
		chk, ct := fig5aChecker(b)
		q, err := sqlengine.Compile(ct, chk.Resolver())
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := q.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- Figure 5(b): FD areacode → state ---------------------------------

func fig5bChecker(b *testing.B, noFast bool) (*core.Checker, logic.Constraint) {
	b.Helper()
	fx := customers()
	chk := core.New(fx.cat, core.Options{NoFDFastPath: noFast, NodeBudget: 8_000_000})
	if _, err := chk.BuildIndex("NCS", "CUST", []string{"areacode", "city", "state"}, core.OrderProbConverge); err != nil {
		b.Fatal(err)
	}
	f, err := logic.Parse(`forall a, s1, s2: NCS(a, _, s1) and NCS(a, _, s2) => s1 = s2`)
	if err != nil {
		b.Fatal(err)
	}
	return chk, logic.Constraint{Name: "fd", F: f}
}

func BenchmarkFig5bFD(b *testing.B) {
	b.Run("bdd-project", func(b *testing.B) {
		chk, ct := fig5bChecker(b, false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if res := chk.CheckOne(ct); res.Err != nil {
				b.Fatal(res.Err)
			}
		}
	})
	b.Run("bdd-selfjoin", func(b *testing.B) {
		chk, ct := fig5bChecker(b, true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if res := chk.CheckOne(ct); res.Err != nil || res.FellBack {
				b.Fatalf("%+v", res)
			}
		}
	})
	b.Run("sql-groupby", func(b *testing.B) {
		fx := customers()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sqlengine.CheckFD(fx.data.Table, []int{0}, []int{3})
		}
	})
	b.Run("sql-selfjoin", func(b *testing.B) {
		chk, ct := fig5bChecker(b, false)
		q, err := sqlengine.Compile(ct, chk.Resolver())
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := q.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- Figure 6: rewrite rules at the BDD level --------------------------

type fig6Fixture struct {
	k          *bdd.Kernel
	r1, r2     bdd.Ref
	p, q       bdd.Ref
	joinL      []*fdd.Domain
	joinR      []*fdd.Domain
	topCube    bdd.Ref
	bottomCube bdd.Ref
	replaceMap bdd.ReplaceMap
}

var fig6 = sync.OnceValue(func() *fig6Fixture {
	k := bdd.New(bdd.Config{Vars: 0, CacheSize: 1 << 18})
	space := fdd.NewSpace(k)
	rng := rand.New(rand.NewSource(5))
	const domSize = 1 << 10
	a := space.NewDomain("a", domSize)
	bb := space.NewDomain("b", domSize)
	c := space.NewDomain("c", domSize)
	d := space.NewDomain("d", domSize)
	build := func(doms []*fdd.Domain, n int) bdd.Ref {
		rows := make([][]int, n)
		for i := range rows {
			row := make([]int, len(doms))
			for j := range row {
				row[j] = rng.Intn(domSize)
			}
			rows[i] = row
		}
		f, err := fdd.Relation(doms, rows)
		if err != nil {
			panic(err)
		}
		return k.Protect(f)
	}
	fx := &fig6Fixture{
		k:     k,
		r1:    build([]*fdd.Domain{a, bb}, 120000),
		r2:    build([]*fdd.Domain{c, d}, 60000),
		joinL: []*fdd.Domain{bb},
		joinR: []*fdd.Domain{c},
	}
	fx.p = build([]*fdd.Domain{a, bb, c}, 120000)
	fx.q = build([]*fdd.Domain{a, bb, c}, 60000)
	fx.topCube = k.Protect(a.Cube())
	fx.bottomCube = k.Protect(c.Cube())
	m, err := fdd.ReplaceMap(fx.joinR, fx.joinL)
	if err != nil {
		panic(err)
	}
	fx.replaceMap = m
	return fx
})

func BenchmarkFig6aJoinRewrite(b *testing.B) {
	fx := fig6()
	k := fx.k
	b.Run("naive-equality", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			k.GC()
			mark := k.TempMark()
			eq := k.TempKeep(fdd.EqVar(fx.joinL[0], fx.joinR[0]))
			step := k.TempKeep(k.And(fx.r1, fx.r2))
			step = k.TempKeep(k.And(step, eq))
			if fdd.Exists(step, fx.joinR...) == bdd.Invalid {
				b.Fatal(k.Err())
			}
			k.TempRelease(mark)
		}
	})
	b.Run("optimized-rename", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			k.GC()
			mark := k.TempMark()
			renamed := k.TempKeep(k.Replace(fx.r2, fx.replaceMap))
			if k.And(fx.r1, renamed) == bdd.Invalid {
				b.Fatal(k.Err())
			}
			k.TempRelease(mark)
		}
	})
}

func BenchmarkFig6bExistsPullUp(b *testing.B) {
	fx := fig6()
	k := fx.k
	b.Run("ExP-or-ExQ", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			k.GC()
			mark := k.TempMark()
			l := k.TempKeep(k.Exists(fx.p, fx.bottomCube))
			if k.Or(l, k.Exists(fx.q, fx.bottomCube)) == bdd.Invalid {
				b.Fatal(k.Err())
			}
			k.TempRelease(mark)
		}
	})
	b.Run("AppEx-or", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			k.GC()
			if k.AppEx(fx.p, fx.q, bdd.OpOr, fx.bottomCube) == bdd.Invalid {
				b.Fatal(k.Err())
			}
		}
	})
}

func BenchmarkFig6cForallPushDown(b *testing.B) {
	fx := fig6()
	k := fx.k
	b.Run("AppAll-and", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			k.GC()
			if k.AppAll(fx.p, fx.q, bdd.OpAnd, fx.topCube) == bdd.Invalid {
				b.Fatal(k.Err())
			}
		}
	})
	b.Run("FAP-and-FAQ", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			k.GC()
			mark := k.TempMark()
			l := k.TempKeep(k.Forall(fx.p, fx.topCube))
			if k.And(l, k.Forall(fx.q, fx.topCube)) == bdd.Invalid {
				b.Fatal(k.Err())
			}
			k.TempRelease(mark)
		}
	})
}

// ---- Table 1: Q1–Q5 under the three approaches ------------------------

type table1Fixture struct {
	workload *datagen.Table1Workload
	sqlQs    []*sqlengine.Query
	random   *core.Checker
	optimal  *core.Checker
}

var table1 = sync.OnceValue(func() *table1Fixture {
	rng := rand.New(rand.NewSource(6))
	w, err := datagen.NewTable1Workload(datagen.Table1Spec{MainTuples: 50000, RefTuples: 10000}, rng)
	if err != nil {
		panic(err)
	}
	fx := &table1Fixture{workload: w}
	res := logic.CatalogResolver{Catalog: w.Catalog}
	for _, ct := range w.Constraints {
		q, err := sqlengine.Compile(ct, res)
		if err != nil {
			panic(err)
		}
		fx.sqlQs = append(fx.sqlQs, q)
	}
	fx.random = core.New(w.Catalog, core.Options{RandomSeed: 7})
	fx.optimal = core.New(w.Catalog, core.Options{})
	for _, tbl := range []string{"REL", "REF"} {
		if _, err := fx.random.BuildIndex(tbl, tbl, nil, core.OrderRandom); err != nil {
			panic(err)
		}
		if _, err := fx.optimal.BuildIndex(tbl, tbl, nil, core.OrderProbConverge); err != nil {
			panic(err)
		}
	}
	return fx
})

func BenchmarkTable1Queries(b *testing.B) {
	fx := table1()
	for qi, ct := range fx.workload.Constraints {
		name := fmt.Sprintf("Q%d", qi+1)
		b.Run("sql/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := fx.sqlQs[qi].Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("bdd-random/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if res := fx.random.CheckOne(ct); res.Err != nil || res.FellBack {
					b.Fatalf("%+v", res)
				}
			}
		})
		b.Run("bdd-optimized/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if res := fx.optimal.CheckOne(ct); res.Err != nil || res.FellBack {
					b.Fatalf("%+v", res)
				}
			}
		})
	}
}

// ---- §5.2 threshold: time to fill the node budget ----------------------

func BenchmarkThresholdFill(b *testing.B) {
	for _, budget := range []int{1000, 100000, 1000000} {
		b.Run(fmt.Sprintf("budget-%d", budget), func(b *testing.B) {
			rng := rand.New(rand.NewSource(8))
			const nVars = 96
			for i := 0; i < b.N; i++ {
				k := bdd.New(bdd.Config{Vars: nVars, NodeBudget: budget, CacheSize: 1 << 16})
				f := bdd.True
				for f != bdd.Invalid {
					k.TempKeep(f)
					clause := k.Xor(k.Xor(k.Var(rng.Intn(nVars)), k.Var(rng.Intn(nVars))), k.Var(rng.Intn(nVars)))
					f = k.And(f, clause)
				}
			}
		})
	}
}

// ---- parallel read path: replicated kernels ----------------------------

type parallelFixture struct {
	v  *replica.Version
	ct logic.Constraint
}

// parallelCheck freezes the Figure 5(a) membership workload into one
// immutable version all pool sizes share: every sub-benchmark adopts the
// same indices, so only the replica count varies.
var parallelCheck = sync.OnceValue(func() *parallelFixture {
	fx := customers()
	chk := core.New(fx.cat, core.Options{NodeBudget: 8_000_000})
	if _, err := chk.BuildIndex("CA", "CUST", []string{"city", "areacode"}, core.OrderProbConverge); err != nil {
		panic(err)
	}
	if fx.cat.Table("CONS") == nil {
		rng := rand.New(rand.NewSource(4))
		if _, err := datagen.MembershipConstraints(fx.cat, "CONS", fx.data, 10000, rng); err != nil {
			panic(err)
		}
	}
	if _, err := chk.BuildIndex("CONS", "CONS", nil, core.OrderSchema); err != nil {
		panic(err)
	}
	f, err := logic.Parse(`forall c, a: CA(c, a) and (exists x: CONS(c, x)) => CONS(c, a)`)
	if err != nil {
		panic(err)
	}
	v, err := replica.NewVersion(chk, 1)
	if err != nil {
		panic(err)
	}
	return &parallelFixture{v: v, ct: logic.Constraint{Name: "membership", F: f}}
})

// BenchmarkParallelCheck measures read throughput through the replicated
// kernel pool at 1/2/4/8 replicas. On a multi-core runner checks/sec should
// scale close to linearly until the pool size reaches the core count; on a
// single core all sizes collapse to the same rate (replication adds no
// locking to lose).
func BenchmarkParallelCheck(b *testing.B) {
	fx := parallelCheck()
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("replicas-%d", n), func(b *testing.B) {
			pool, err := replica.New(n, fx.v)
			if err != nil {
				b.Fatal(err)
			}
			defer pool.Close()
			// Materialize every worker's replica and warm its operation
			// caches outside the timed region: n jobs meeting at a barrier
			// land on n distinct workers, and each serves the constraint
			// once cold. The timed region then measures the steady state a
			// long-lived pool settles into between version swaps.
			var ready, warm sync.WaitGroup
			ready.Add(n)
			for i := 0; i < n; i++ {
				warm.Add(1)
				go func() {
					defer warm.Done()
					if err := pool.Do(context.Background(), func(chk *core.Checker, _ uint64) {
						ready.Done()
						ready.Wait()
						chk.CheckOneOpts(fx.ct, core.CheckOptions{NoSQLFallback: true})
					}); err != nil {
						b.Error(err)
					}
				}()
			}
			warm.Wait()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					err := pool.Do(context.Background(), func(chk *core.Checker, _ uint64) {
						if res := chk.CheckOneOpts(fx.ct, core.CheckOptions{NoSQLFallback: true}); res.Err != nil || res.FellBack {
							b.Errorf("%+v", res)
						}
					})
					if err != nil {
						b.Error(err)
					}
				}
			})
			b.StopTimer()
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(float64(b.N)/s, "checks/sec")
			}
		})
	}
}

// ---- kernel micro-benchmarks -------------------------------------------

func BenchmarkKernelApply(b *testing.B) {
	fx := fig6()
	k := fx.k
	for i := 0; i < b.N; i++ {
		k.GC()
		if k.And(fx.p, fx.q) == bdd.Invalid {
			b.Fatal(k.Err())
		}
	}
}

func BenchmarkRelationEncode(b *testing.B) {
	fx := customers()
	rows := make([][]int, fx.data.Table.Len())
	for i := range rows {
		r := fx.data.Table.Row(i)
		rows[i] = []int{int(r[0]), int(r[2]), int(r[3])}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := bdd.New(bdd.Config{Vars: 0})
		space := fdd.NewSpace(k)
		doms := []*fdd.Domain{
			space.NewDomain("areacode", datagen.NumAreacodes),
			space.NewDomain("city", datagen.NumCities),
			space.NewDomain("state", datagen.NumStates),
		}
		if _, err := fdd.Relation(doms, rows); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(fx.data.Table.Len()), "tuples")
}
