// Command cvcheck validates first-order constraints against CSV tables
// using BDD logical indices with SQL fallback — the end-to-end tool form of
// the paper's system.
//
// Usage:
//
//	cvcheck -table CUST=cust.csv -table CONS=cons.csv \
//	        -share city,areacode \
//	        -constraints rules.txt [-order prob] [-budget 1000000] \
//	        [-witnesses 5] [-explain]
//
// Each CSV file needs a header row. Columns with the same header name are
// joinable across tables when listed in -share; otherwise every column gets
// a private value domain. The constraints file holds declarations of the
// form:
//
//	constraint nj_codes:
//	    forall c, a: CUST(c, a, "NJ") => a in {"201", "973", "908"}.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/relation"
)

type tableFlag struct {
	name, path string
}

func main() {
	var tables []tableFlag
	flag.Func("table", "NAME=path.csv (repeatable)", func(s string) error {
		name, path, ok := strings.Cut(s, "=")
		if !ok {
			return fmt.Errorf("want NAME=path.csv, got %q", s)
		}
		tables = append(tables, tableFlag{name, path})
		return nil
	})
	share := flag.String("share", "", "comma-separated column names shared across tables")
	constraintsPath := flag.String("constraints", "", "constraints file (required)")
	orderFlag := flag.String("order", "prob", "variable ordering: prob|maxinf|random|schema")
	budget := flag.Int("budget", core.DefaultNodeBudget, "BDD node budget (negative = unlimited)")
	witnesses := flag.Int("witnesses", 3, "violating bindings to print per constraint")
	explain := flag.Bool("explain", false, "print the SQL form of each violation query")
	flag.Parse()

	if len(tables) == 0 || *constraintsPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	method, err := core.ParseOrderingMethod(*orderFlag)
	if err != nil {
		fatal(err)
	}

	shared := map[string]string{}
	if *share != "" {
		for _, col := range strings.Split(*share, ",") {
			shared[strings.TrimSpace(col)] = strings.TrimSpace(col)
		}
	}

	cat := relation.NewCatalog()
	for _, tf := range tables {
		t, err := cat.ReadCSVFile(tf.name, tf.path, shared)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded %s: %d rows, %d columns\n", t.Name(), t.Len(), t.NumCols())
	}

	src, err := os.ReadFile(*constraintsPath)
	if err != nil {
		fatal(err)
	}
	constraints, err := logic.ParseConstraints(string(src))
	if err != nil {
		fatal(err)
	}

	chk := core.New(cat, core.Options{NodeBudget: *budget})
	for _, tf := range tables {
		ix, err := chk.BuildIndex(tf.name, tf.name, nil, method)
		if err != nil {
			fmt.Printf("index %s: %v (constraints on it fall back to SQL)\n", tf.name, err)
			continue
		}
		fmt.Printf("index %s: %d nodes\n", tf.name, ix.NodeCount())
	}

	fmt.Println()
	exit := 0
	for _, ct := range constraints {
		res := chk.CheckOne(ct)
		switch {
		case res.Err != nil:
			fmt.Printf("%-24s ERROR: %v\n", ct.Name, res.Err)
			exit = 2
		case res.Violated:
			fmt.Printf("%-24s VIOLATED (method=%s, %v)\n", ct.Name, res.Method, res.Duration.Round(0))
			exit = 1
			if *witnesses > 0 {
				printWitnesses(chk, ct, *witnesses)
			}
		default:
			fmt.Printf("%-24s ok       (method=%s, %v)\n", ct.Name, res.Method, res.Duration.Round(0))
		}
		if *explain {
			if sql, err := chk.SQLOf(ct); err == nil {
				fmt.Printf("  -- SQL:\n%s\n", indent(sql, "  "))
			}
		}
	}
	os.Exit(exit)
}

func printWitnesses(chk *core.Checker, ct logic.Constraint, limit int) {
	ws, err := chk.ViolationWitnesses(ct, limit)
	if err == nil && len(ws) > 0 {
		for _, w := range ws {
			fmt.Printf("  witness: %v = %v\n", w.Vars, w.Values)
		}
		return
	}
	// Existence-style constraint or BDD unavailable: use the SQL view.
	rows, err := chk.ViolatingRows(ct)
	if err != nil {
		return
	}
	for i := 0; i < rows.Len() && i < limit; i++ {
		fmt.Printf("  witness: %v = %v\n", rows.Vars, rows.Decode(i))
	}
}

func indent(s, pre string) string {
	return pre + strings.ReplaceAll(s, "\n", "\n"+pre)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cvcheck:", err)
	os.Exit(2)
}
