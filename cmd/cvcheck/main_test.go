package main_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// buildOnce compiles the cvcheck binary once per test run.
var buildOnce = sync.OnceValues(func() (string, error) {
	dir, err := os.MkdirTemp("", "cvcheck")
	if err != nil {
		return "", err
	}
	bin := filepath.Join(dir, "cvcheck")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		return "", &buildError{string(out), err}
	}
	return bin, nil
})

type buildError struct {
	out string
	err error
}

func (e *buildError) Error() string { return e.err.Error() + "\n" + e.out }

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestEndToEnd(t *testing.T) {
	bin, err := buildOnce()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cust := writeFile(t, dir, "cust.csv", strings.Join([]string{
		"city,areacode,state",
		"Toronto,416,Ontario",
		"Toronto,647,Ontario",
		"Oshawa,905,Ontario",
		"Newark,973,NJ",
		"Newark,416,NJ", // violates nj_codes
		"",
	}, "\n"))
	rules := writeFile(t, dir, "rules.txt", `
		constraint nj_codes:
		    forall c, a: CUST(c, a, "NJ") => a in {"201", "973", "908"}.
		constraint toronto_ontario:
		    forall a, s: CUST("Toronto", a, s) => s = "Ontario".
	`)
	cmd := exec.Command(bin, "-table", "CUST="+cust, "-constraints", rules, "-witnesses", "3")
	out, err := cmd.CombinedOutput()
	text := string(out)
	// Exit code 1 signals violations found.
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("expected exit code 1, got %v\n%s", err, text)
	}
	for _, want := range []string{
		"loaded CUST: 5 rows",
		"nj_codes",
		"VIOLATED",
		"toronto_ontario",
		"ok",
		"Newark",
		"416",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "method=sql") {
		t.Errorf("constraints should have been checked via BDD:\n%s", text)
	}
}

func TestEndToEndCleanDatabase(t *testing.T) {
	bin, err := buildOnce()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cust := writeFile(t, dir, "cust.csv", "city,areacode\nToronto,416\n")
	rules := writeFile(t, dir, "rules.txt",
		`constraint ok: forall c, a: CUST(c, a) => a in {"416"}.`)
	cmd := exec.Command(bin, "-table", "CUST="+cust, "-constraints", rules)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("expected success, got %v\n%s", err, out)
	}
}

func TestEndToEndBadFlags(t *testing.T) {
	bin, err := buildOnce()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin) // no tables, no constraints
	if err := cmd.Run(); err == nil {
		t.Fatal("expected failure with no arguments")
	}
	cmd = exec.Command(bin, "-table", "bad-spec", "-constraints", "x")
	if err := cmd.Run(); err == nil {
		t.Fatal("expected failure with malformed -table")
	}
}
