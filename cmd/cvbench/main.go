// Command cvbench regenerates the paper's evaluation: every figure and
// table of §5, printed as text tables with the paper's reported numbers for
// comparison.
//
// Usage:
//
//	cvbench [-exp all|fig2a|fig2bc|fig3|fig4|fig5a|fig5b|fig6a|fig6b|fig6c|table1|threshold|parallel|reorder|shard]
//	        [-full] [-seed N] [-json rows.jsonl] [-parallel N]
//
// By default reduced workload sizes keep the whole run in laptop-minutes;
// -full selects the paper-scale parameters (400k-tuple relations, all 120
// orderings, 10^7-node threshold fills). -json additionally writes one JSON
// object per timed measurement (JSON Lines) for downstream tooling; "-"
// selects stdout.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

var all = []struct {
	name string
	run  func(experiments.Config) error
}{
	{"fig2a", experiments.Fig2a},
	{"fig2bc", experiments.Fig2bc},
	{"fig3", experiments.Fig3},
	{"fig4", experiments.Fig4},
	{"fig5a", experiments.Fig5a},
	{"fig5b", experiments.Fig5b},
	{"fig6a", experiments.Fig6a},
	{"fig6b", experiments.Fig6b},
	{"fig6c", experiments.Fig6c},
	{"table1", experiments.Table1},
	{"threshold", experiments.Threshold},
	{"parallel", experiments.Parallel},
	{"reorder", experiments.Reorder},
	{"shard", experiments.Shard},
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (comma separated), or 'all'")
	full := flag.Bool("full", false, "paper-scale workloads")
	seed := flag.Int64("seed", 1, "base random seed")
	jsonPath := flag.String("json", "", "write benchmark rows as JSON Lines to this file ('-' = stdout)")
	parallel := flag.Int("parallel", 0, "max replica pool size for the parallel experiment (0 = 8)")
	flag.Parse()

	cfg := experiments.Config{Out: os.Stdout, Full: *full, Seed: *seed, Parallel: *parallel}
	var jsonEnc *json.Encoder
	if *jsonPath != "" {
		var w io.Writer = os.Stdout
		if *jsonPath != "-" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cvbench:", err)
				os.Exit(2)
			}
			defer f.Close()
			w = f
		}
		jsonEnc = json.NewEncoder(w)
		cfg.Record = func(row experiments.BenchRow) {
			if err := jsonEnc.Encode(row); err != nil {
				fmt.Fprintln(os.Stderr, "cvbench: writing json:", err)
				os.Exit(2)
			}
		}
	}
	want := map[string]bool{}
	for _, name := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(name)] = true
	}
	ran := 0
	for _, e := range all {
		if !want["all"] && !want[e.name] {
			continue
		}
		ran++
		start := time.Now()
		if err := e.run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "cvbench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		if cfg.Record != nil {
			cfg.Record(experiments.BenchRow{
				Experiment: e.name, Name: "elapsed", NsPerOp: elapsed.Nanoseconds(),
			})
		}
		fmt.Printf("[%s completed in %v]\n\n", e.name, elapsed.Round(time.Millisecond))
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "cvbench: no experiment matches %q\n", *exp)
		os.Exit(2)
	}
}
