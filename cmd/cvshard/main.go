// Command cvshard cuts CSV tables into per-shard directories for the
// multi-process sharded deployment: each output directory holds one
// partition of every table, ready to boot an ordinary single-kernel
// cvserved as that shard's worker.
//
// Usage:
//
//	cvshard -shards 4 -key CUST.city \
//	        -table CUST=cust.csv -table SUPP=supp.csv \
//	        -share city,state \
//	        [-mode hash|range] [-bounds M,T] -out ./shards
//
// Partitioning follows the same rules as the cvserved coordinator: rows of
// the key table and of every table with a column over the key's domain go
// to the owning shard (FNV-1a hash of the value, or the range cut given by
// -bounds); tables without such a column are broadcast in full to every
// shard. The output layout is out/shard<i>/<TABLE>.csv.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/relation"
	"repro/internal/shard"
)

func main() {
	var tables []string
	flag.Func("table", "NAME=path.csv (repeatable)", func(s string) error {
		if !strings.Contains(s, "=") {
			return fmt.Errorf("want NAME=path.csv, got %q", s)
		}
		tables = append(tables, s)
		return nil
	})
	shards := flag.Int("shards", 0, "number of partitions (required)")
	keyFlag := flag.String("key", "", "TABLE.COLUMN partitioning key (required)")
	modeFlag := flag.String("mode", "hash", "partitioning function: hash|range")
	boundsFlag := flag.String("bounds", "", "comma-separated sorted split points for -mode range (N-1 bounds for N shards)")
	share := flag.String("share", "", "comma-separated column names shared across tables")
	out := flag.String("out", "", "output directory (required); writes out/shard<i>/<TABLE>.csv")
	flag.Parse()

	if *shards <= 0 || *keyFlag == "" || *out == "" || len(tables) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	key, err := shard.ParseKey(*keyFlag)
	if err != nil {
		fatal(err)
	}
	mode, err := shard.ParseMode(*modeFlag)
	if err != nil {
		fatal(err)
	}
	var bounds []string
	if *boundsFlag != "" {
		for _, b := range strings.Split(*boundsFlag, ",") {
			bounds = append(bounds, strings.TrimSpace(b))
		}
	}
	shared := map[string]string{}
	if *share != "" {
		for _, col := range strings.Split(*share, ",") {
			shared[strings.TrimSpace(col)] = strings.TrimSpace(col)
		}
	}

	cat := relation.NewCatalog()
	for _, tf := range tables {
		name, path, _ := strings.Cut(tf, "=")
		t, err := cat.ReadCSVFile(name, path, shared)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded %s: %d rows\n", t.Name(), t.Len())
	}
	part, err := shard.NewPartitioner(cat, key, *shards, mode, bounds)
	if err != nil {
		fatal(err)
	}

	for i, pc := range part.Split(cat) {
		dir := filepath.Join(*out, fmt.Sprintf("shard%d", i))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatal(err)
		}
		for _, t := range pc.Tables() {
			f, err := os.Create(filepath.Join(dir, t.Name()+".csv"))
			if err != nil {
				fatal(err)
			}
			if err := t.WriteCSV(f); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			kind := "partitioned"
			if part.PartitionColumn(t) < 0 {
				kind = "broadcast"
			}
			fmt.Printf("shard%d/%s.csv: %d rows (%s)\n", i, t.Name(), t.Len(), kind)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cvshard:", err)
	os.Exit(2)
}
