// Command datagen emits the paper's evaluation datasets as CSV, for use
// with cvcheck or external tools.
//
// Usage:
//
//	datagen -kind customers -tuples 100000 -noise 0.002 > cust.csv
//	datagen -kind kprod -k 4 -tuples 400000 > rel.csv
//	datagen -kind constraints -tuples 10000 > cons.csv
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/datagen"
	"repro/internal/relation"
)

func main() {
	kind := flag.String("kind", "customers", "customers|kprod|constraints")
	tuples := flag.Int("tuples", 100000, "relation size")
	k := flag.Int("k", 1, "number of products for -kind kprod (0 = random)")
	attrs := flag.Int("attrs", 5, "attributes for -kind kprod")
	domSize := flag.Int("dom", 100, "domain size cap for -kind kprod")
	noise := flag.Float64("noise", 0, "noise rate for -kind customers")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	cat := relation.NewCatalog()
	var t *relation.Table
	var err error
	switch *kind {
	case "customers":
		var data *datagen.CustomerData
		data, err = datagen.Customers(cat, "CUST", datagen.CustomerSpec{
			Tuples: *tuples, NoiseRate: *noise,
		}, rng)
		if err == nil {
			t = data.Table
		}
	case "kprod":
		t, err = datagen.KProd(cat, "REL", datagen.ProdSpec{
			Products: *k, Attrs: *attrs, Tuples: *tuples, DomSize: *domSize,
		}, rng)
	case "constraints":
		var data *datagen.CustomerData
		data, err = datagen.Customers(cat, "CUST", datagen.CustomerSpec{Tuples: 1000}, rng)
		if err == nil {
			t, err = datagen.MembershipConstraints(cat, "CONS", data, *tuples, rng)
		}
	default:
		err = fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(2)
	}
	if err := t.WriteCSV(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(2)
	}
}
