// Command cvlint is the repository's domain-specific static analysis suite.
//
// It enforces the contracts of the BDD kernel that Go's type system cannot
// express (see DESIGN.md, "Static contracts"):
//
//	sentinelcmp  errors.Is for wrapped sentinel errors, never == / !=
//	tempmark     TempMark/TempRelease paired on all paths; Protect balanced
//	kernelmix    no bdd.Ref crosses kernels except through CopyTo
//	stickyerr    allocating kernel ops are followed by an error consult
//	kernelowner  structural kernel/checker mutation stays on the owner goroutine
//	ackorder     WAL append and epoch publish happen before the ack, never after
//	lockorder    mutex acquisition order is globally acyclic
//	ctxleak      spawned goroutine loops observe ctx.Done or a quit channel
//
// cvlint is usable two ways:
//
//	cvlint [flags] [packages]      standalone: drives `go vet -vettool` on
//	                               the given packages (default ./...)
//	go vet -vettool=$(which cvlint) ./...
//	                               as a vet tool, the canonical CI form
//
// Both forms run the same analyzers over type-checked packages; the
// standalone form simply re-executes itself through `go vet`, which supplies
// type information for every package from the build cache, and facts
// exported by one package's analysis travel to its importers through vet's
// .vetx files, so the interprocedural analyzers see across package
// boundaries. Suppress a deliberate exception with a justified directive on
// or above the line (several analyzers may be named, comma-separated):
//
//	//lint:ignore tempmark kernel dies with this function; pin is intentional
//
// Standalone flags (cmd/go forwards no tool flags, so these tunnel to the
// vet-tool invocations through the environment):
//
//	-json            emit diagnostics as JSON lines (CVLINT_JSON=1)
//	-analyzers=a,b   run only the named analyzers (CVLINT_ANALYZERS)
package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/ackorder"
	"repro/internal/analysis/ctxleak"
	"repro/internal/analysis/kernelmix"
	"repro/internal/analysis/kernelowner"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/sentinelcmp"
	"repro/internal/analysis/stickyerr"
	"repro/internal/analysis/tempmark"
	"repro/internal/analysis/unitchecker"
)

// Suite is the full cvlint analyzer set, in reporting order.
var suite = []*analysis.Analyzer{
	sentinelcmp.Analyzer,
	tempmark.Analyzer,
	kernelmix.Analyzer,
	stickyerr.Analyzer,
	kernelowner.Analyzer,
	ackorder.Analyzer,
	lockorder.Analyzer,
	ctxleak.Analyzer,
}

func main() {
	args := os.Args[1:]
	// Vet-tool protocol invocations come from cmd/go and are exactly one
	// argument; everything else is the human-facing standalone form.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full", args[0] == "-flags", filepath.Ext(args[0]) == ".cfg":
			unitchecker.Main("cvlint", suite)
			return
		case args[0] == "help", args[0] == "-h", args[0] == "--help":
			usage()
			return
		}
	}
	os.Exit(standalone(args))
}

func usage() {
	fmt.Printf("cvlint: static analysis for this repository's BDD-kernel contracts\n\nAnalyzers:\n")
	for _, a := range suite {
		fmt.Printf("  %-12s %s\n", a.Name, a.Doc)
	}
	fmt.Printf("\nUsage:\n  cvlint [flags] [packages]    (default ./...)\n  go vet -vettool=$(which cvlint) [packages]\n")
	fmt.Printf("\nFlags (standalone form only):\n  -json            emit diagnostics as JSON lines\n  -analyzers=a,b   run only the named analyzers\n")
}

// standalone re-executes cvlint through `go vet -vettool=self`: cmd/go
// loads, compiles and describes each package, then calls back into the
// unitchecker protocol above with full type information. Output and
// analyzer-selection flags tunnel through the environment, because cmd/go
// does not forward tool flags to the vettool.
func standalone(args []string) int {
	env := os.Environ()
	var pkgs []string
	for i := 0; i < len(args); i++ {
		switch arg := args[i]; {
		case arg == "-json" || arg == "--json":
			env = append(env, "CVLINT_JSON=1")
		case strings.HasPrefix(arg, "-analyzers=") || strings.HasPrefix(arg, "--analyzers="):
			sel := arg[strings.Index(arg, "=")+1:]
			if _, err := unitchecker.Select(suite, sel); err != nil {
				fmt.Fprintf(os.Stderr, "cvlint: %v\n", err)
				return 2
			}
			env = append(env, "CVLINT_ANALYZERS="+sel)
		case strings.HasPrefix(arg, "-"):
			fmt.Fprintf(os.Stderr, "cvlint: unknown flag %s\n", arg)
			usage()
			return 2
		default:
			pkgs = append(pkgs, arg)
		}
	}
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "cvlint: cannot locate own executable: %v\n", err)
		return 2
	}
	if len(pkgs) == 0 {
		pkgs = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, pkgs...)...)
	cmd.Env = env
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "cvlint: %v\n", err)
		return 2
	}
	return 0
}
