// Command cvstore inspects a cvserved data directory offline.
//
// Usage:
//
//	cvstore info   -data-dir /var/lib/cv   # manifest, WAL and snapshot summary
//	cvstore verify -data-dir /var/lib/cv   # restore every snapshot, scan the WAL; exit 1 on damage
//	cvstore compact -data-dir /var/lib/cv  # remove temp files and orphaned snapshots
//
// verify restores every retained snapshot into a throwaway checker and
// checks lengths, CRCs and epochs against the manifest, so a corrupted
// artifact is found before the daemon trips over it at the next restart. A
// torn WAL tail is reported but is not damage: recovery drops it by design
// (those bytes were never acknowledged).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/store"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet("cvstore "+cmd, flag.ExitOnError)
	dataDir := fs.String("data-dir", "", "data directory to inspect (required)")
	fs.Parse(os.Args[2:])
	if *dataDir == "" {
		fs.Usage()
		os.Exit(2)
	}
	var err error
	switch cmd {
	case "info":
		err = store.Info(*dataDir, os.Stdout)
	case "verify":
		err = store.Verify(*dataDir, os.Stdout)
	case "compact":
		err = store.Compact(*dataDir, os.Stdout)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cvstore:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: cvstore {info|verify|compact} -data-dir DIR")
	os.Exit(2)
}
