package main

// shardboot.go assembles the horizontally sharded daemon forms:
//
//	-shards N -shard-key TABLE.COL          N in-process shard kernels behind
//	                                        one scatter-gather coordinator in
//	                                        this process.
//	-coordinator -worker-urls u1,u2,...     coordinator only; each URL is an
//	                                        ordinary single-kernel cvserved
//	                                        serving that shard's partition
//	                                        (cut offline with cvshard).
//
// Both forms boot cold from CSV: the coordinator needs the full catalog to
// plan constraint decomposition and to back its residual checker, so
// -table/-constraints stay mandatory and the durability flags (-data-dir,
// -follow) are refused — per-shard durability belongs to the workers.

import (
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/shard"
)

// shardBootConfig is the sharded slice of the command line.
type shardBootConfig struct {
	bootConfig

	shards      int
	key         string
	mode        string
	bounds      string
	coordinator bool
	workerURLs  string

	queue   int
	timeout time.Duration
}

// bootSharded builds the coordinator for either sharded form and returns
// its HTTP handler plus a shutdown hook.
func bootSharded(cfg shardBootConfig) (http.Handler, func(), error) {
	if cfg.dataDir != "" || cfg.follow != "" {
		return nil, nil, errors.New("sharded modes boot cold from CSV: -data-dir and -follow belong on the shard workers, not the coordinator")
	}
	if cfg.coordinator && cfg.workerURLs == "" {
		return nil, nil, errors.New("-coordinator requires -worker-urls (comma-separated shard worker base URLs, in shard order)")
	}
	if !cfg.coordinator && cfg.workerURLs != "" {
		return nil, nil, errors.New("-worker-urls requires -coordinator")
	}
	if cfg.key == "" {
		return nil, nil, errors.New("sharded modes require -shard-key TABLE.COLUMN")
	}
	key, err := shard.ParseKey(cfg.key)
	if err != nil {
		return nil, nil, err
	}
	mode, err := shard.ParseMode(cfg.mode)
	if err != nil {
		return nil, nil, err
	}
	var bounds []string
	if cfg.bounds != "" {
		for _, b := range strings.Split(cfg.bounds, ",") {
			bounds = append(bounds, strings.TrimSpace(b))
		}
	}

	var urls []string
	n := cfg.shards
	if cfg.coordinator {
		for _, u := range strings.Split(cfg.workerURLs, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		if len(urls) == 0 {
			return nil, nil, errors.New("-worker-urls names no workers")
		}
		if n > 0 && n != len(urls) {
			return nil, nil, fmt.Errorf("-shards %d disagrees with %d -worker-urls entries", n, len(urls))
		}
		n = len(urls)
	}
	if n <= 0 {
		return nil, nil, errors.New("-shards must be positive")
	}

	cat, constraints, err := loadCatalog(cfg.bootConfig)
	if err != nil {
		return nil, nil, err
	}
	part, err := shard.NewPartitioner(cat, key, n, mode, bounds)
	if err != nil {
		return nil, nil, err
	}
	opts := shard.Options{
		NodeBudget:     cfg.budget,
		Method:         cfg.method,
		QueueDepth:     cfg.queue,
		DefaultTimeout: cfg.timeout,
		Logf:           cfg.logf,
	}

	var coord *shard.Coordinator
	if cfg.coordinator {
		workers := make([]shard.Worker, n)
		for i, u := range urls {
			workers[i] = shard.NewHTTPWorker(i, u, nil)
		}
		coord, err = shard.NewCoordinator(cat, constraints, part, workers, opts)
		if err != nil {
			return nil, nil, err
		}
		cfg.logf("coordinator over %d HTTP shard workers, key %s (%s)", n, cfg.key, cfg.mode)
	} else {
		coord, err = shard.NewInProcess(cat, constraints, part, opts)
		if err != nil {
			return nil, nil, err
		}
		cfg.logf("coordinator over %d in-process shards, key %s (%s)", n, cfg.key, cfg.mode)
	}
	return coord.Handler(), coord.Close, nil
}
