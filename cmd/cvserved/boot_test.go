package main

// boot_test.go pins the boot policy: cold boots come from CSV and seal an
// initial snapshot, warm boots come from the data directory alone (the CSV
// flags may point at nonexistent files), and a damaged or newer-format data
// directory refuses to start instead of silently rebuilding from CSV.

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/store"
)

const bootRules = `
	constraint nj_codes:
	    forall c, a: CUST(c, a, "NJ") => a in {"201", "973", "908"}.
`

// writeFixtureFiles lays out a CSV table and a constraints file.
func writeFixtureFiles(t *testing.T) (csvPath, rulesPath string) {
	t.Helper()
	dir := t.TempDir()
	csvPath = filepath.Join(dir, "cust.csv")
	rulesPath = filepath.Join(dir, "rules.txt")
	csv := "city,areacode,state\nToronto,416,Ontario\nNewark,416,NJ\nNewark,973,NJ\n"
	if err := os.WriteFile(csvPath, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(rulesPath, []byte(bootRules), 0o644); err != nil {
		t.Fatal(err)
	}
	return csvPath, rulesPath
}

func violated(t *testing.T, res *bootResult, name string) bool {
	t.Helper()
	for _, ct := range res.constraints {
		if ct.Name == name {
			r := res.chk.CheckOne(ct)
			if r.Err != nil {
				t.Fatalf("checking %s: %v", name, r.Err)
			}
			return r.Violated
		}
	}
	t.Fatalf("constraint %s not registered", name)
	return false
}

func TestBootColdThenWarm(t *testing.T) {
	csvPath, rulesPath := writeFixtureFiles(t)
	dataDir := filepath.Join(t.TempDir(), "data")
	cfg := bootConfig{
		tables:          []tableFlag{{"CUST", csvPath}},
		constraintsPath: rulesPath,
		method:          core.OrderProbConverge,
		dataDir:         dataDir,
		logf:            t.Logf,
	}
	res, err := boot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.warm {
		t.Fatal("first boot reported warm")
	}
	if res.initialEpoch != 1 {
		t.Fatalf("cold boot epoch = %d, want 1", res.initialEpoch)
	}
	if !res.st.HasSnapshot() {
		t.Fatal("cold boot did not seal an initial snapshot")
	}
	if !violated(t, res, "nj_codes") {
		t.Fatal("nj_codes should be violated in the fixture")
	}
	if err := res.st.Close(); err != nil {
		t.Fatal(err)
	}

	// Warm boot: the CSV and rules files no longer exist, so any attempt to
	// read them fails the test — the data directory must carry everything.
	if err := os.Remove(csvPath); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(rulesPath); err != nil {
		t.Fatal(err)
	}
	cfg2 := bootConfig{
		tables:  []tableFlag{{"CUST", csvPath}},
		dataDir: dataDir,
		logf:    t.Logf,
	}
	res2, err := boot(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer res2.st.Close()
	if !res2.warm {
		t.Fatal("second boot with a snapshot was not warm")
	}
	if got := res2.chk.Catalog().Table("CUST").Len(); got != 3 {
		t.Fatalf("recovered CUST has %d rows, want 3", got)
	}
	if !violated(t, res2, "nj_codes") {
		t.Fatal("recovered state lost the nj_codes violation")
	}
}

func TestBootRefusesDamagedDataDir(t *testing.T) {
	csvPath, rulesPath := writeFixtureFiles(t)
	base := bootConfig{
		tables:          []tableFlag{{"CUST", csvPath}},
		constraintsPath: rulesPath,
		method:          core.OrderProbConverge,
		logf:            t.Logf,
	}

	t.Run("newer format version", func(t *testing.T) {
		dir := t.TempDir()
		manifest := `{"format_version": 99, "wal": "wal.log", "snapshots": []}`
		if err := os.WriteFile(filepath.Join(dir, store.ManifestName), []byte(manifest), 0o644); err != nil {
			t.Fatal(err)
		}
		cfg := base
		cfg.dataDir = dir
		if _, err := boot(cfg); !errors.Is(err, store.ErrNewerFormat) {
			t.Fatalf("boot err = %v, want ErrNewerFormat", err)
		}
	})

	t.Run("unreadable manifest", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, store.ManifestName), []byte("{nope"), 0o644); err != nil {
			t.Fatal(err)
		}
		cfg := base
		cfg.dataDir = dir
		_, err := boot(cfg)
		if err == nil {
			t.Fatal("boot accepted an unreadable manifest")
		}
		if !strings.Contains(err.Error(), dir) {
			t.Errorf("error does not name the directory: %v", err)
		}
	})

	t.Run("content without manifest", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal.log"), []byte("leftover"), 0o644); err != nil {
			t.Fatal(err)
		}
		cfg := base
		cfg.dataDir = dir
		if _, err := boot(cfg); err == nil {
			t.Fatal("boot accepted a data directory with content but no manifest")
		}
	})
}

func TestBootEmptyDataDirNeedsTables(t *testing.T) {
	cfg := bootConfig{
		dataDir: filepath.Join(t.TempDir(), "data"),
		logf:    t.Logf,
	}
	if _, err := boot(cfg); err == nil {
		t.Fatal("boot accepted an empty data directory with no tables")
	}
}
