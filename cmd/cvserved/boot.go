package main

// boot.go builds the daemon's checker, constraint set and durability store
// from the command line — separated from main so the boot policy is testable:
// a data directory with a snapshot boots warm (snapshot + WAL replay, CSV
// flags ignored), a fresh or absent data directory boots cold from CSV, and
// a damaged data directory refuses to start rather than silently falling
// back to a CSV rebuild that would shadow durable state.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/relation"
	"repro/internal/service"
	"repro/internal/store"
)

// bootConfig is everything boot needs from the flags.
type bootConfig struct {
	tables          []tableFlag
	shared          map[string]string
	constraintsPath string
	method          core.OrderingMethod
	budget          int

	dataDir       string
	fsync         store.FsyncPolicy
	fsyncInterval time.Duration
	retain        int

	// follow is the leader's base URL in follower mode. An empty data
	// directory then bootstraps from the leader's newest snapshot instead of
	// CSV files; CSV and constraints flags are not required.
	follow string

	logf func(format string, args ...any)
}

// bootResult is the assembled server state.
type bootResult struct {
	chk         *core.Checker
	constraints []logic.Constraint
	st          *store.Store // nil without -data-dir
	// initialEpoch seeds service.Options.InitialEpoch: the recovered epoch
	// on a warm boot, 1 otherwise.
	initialEpoch uint64
	// warm is true when the state came from the data directory, not CSV.
	warm bool
}

// boot assembles the checker and (optionally) the durability store. It never
// falls back from a damaged data directory to CSV: store.Open and Recover
// errors propagate, and main exits non-zero on them.
//
//cv:owner worker
func boot(cfg bootConfig) (*bootResult, error) {
	if cfg.logf == nil {
		cfg.logf = func(string, ...any) {}
	}
	if cfg.dataDir == "" {
		return bootCold(cfg, nil)
	}
	st, err := store.Open(cfg.dataDir, store.Options{
		Fsync:         cfg.fsync,
		FsyncInterval: cfg.fsyncInterval,
		Retain:        cfg.retain,
	})
	if err != nil {
		return nil, fmt.Errorf("opening data directory %s: %w", cfg.dataDir, err)
	}
	res, err := func() (*bootResult, error) {
		if cfg.follow != "" && !st.HasSnapshot() {
			// Fresh follower: its first state is the leader's, never CSV.
			if err := fetchInitialSnapshot(cfg, st); err != nil {
				return nil, err
			}
			return bootWarm(cfg, st)
		}
		if st.HasSnapshot() {
			return bootWarm(cfg, st)
		}
		return bootCold(cfg, st)
	}()
	if err != nil {
		st.Close()
		return nil, err
	}
	return res, nil
}

// bootWarm restores the checker from the newest snapshot plus WAL replay.
// Table flags are ignored (the data directory is the source of truth); a
// -constraints flag overrides the snapshot's persisted constraint text.
//
//cv:owner worker
func bootWarm(cfg bootConfig, st *store.Store) (*bootResult, error) {
	if len(cfg.tables) > 0 {
		cfg.logf("data directory has a snapshot; ignoring %d -table flag(s)", len(cfg.tables))
	}
	chk, text, info, err := st.Recover(core.Options{NodeBudget: cfg.budget})
	if err != nil {
		return nil, fmt.Errorf("recovering from %s: %w", cfg.dataDir, err)
	}
	if cfg.constraintsPath != "" {
		src, err := os.ReadFile(cfg.constraintsPath)
		if err != nil {
			return nil, err
		}
		text = string(src)
	}
	constraints, err := logic.ParseConstraints(text)
	if err != nil {
		return nil, fmt.Errorf("parsing recovered constraints: %w", err)
	}
	cfg.logf("warm restart from %s: epoch %d (snapshot %d, %d WAL records / %d tuples replayed)",
		cfg.dataDir, info.LastEpoch, info.SnapshotEpoch, info.ReplayedRecords, info.ReplayedTuples)
	if info.DroppedTailBytes > 0 {
		cfg.logf("dropped %d-byte torn WAL tail (unacknowledged writes from the crash)", info.DroppedTailBytes)
	}
	epoch := info.LastEpoch
	if epoch == 0 {
		epoch = 1
	}
	return &bootResult{chk: chk, constraints: constraints, st: st, initialEpoch: epoch, warm: true}, nil
}

// fetchInitialSnapshot pulls the leader's newest snapshot into the empty
// store, retrying briefly so a follower and its leader can start together.
func fetchInitialSnapshot(cfg bootConfig, st *store.Store) error {
	const attempts = 5
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(time.Duration(i) * 500 * time.Millisecond)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		var epoch uint64
		epoch, err = service.FetchSnapshot(ctx, nil, cfg.follow, st)
		cancel()
		if err == nil {
			cfg.logf("bootstrapped from %s: snapshot at epoch %d", cfg.follow, epoch)
			return nil
		}
		cfg.logf("snapshot fetch from %s (attempt %d/%d): %v", cfg.follow, i+1, attempts, err)
	}
	return fmt.Errorf("bootstrapping from leader %s: %w", cfg.follow, err)
}

// loadCatalog reads the CSV tables and the constraints file — the shared
// front half of every cold boot, including the sharded forms.
func loadCatalog(cfg bootConfig) (*relation.Catalog, []logic.Constraint, error) {
	cat := relation.NewCatalog()
	for _, tf := range cfg.tables {
		t, err := cat.ReadCSVFile(tf.name, tf.path, cfg.shared)
		if err != nil {
			return nil, nil, err
		}
		cfg.logf("loaded %s: %d rows, %d columns", t.Name(), t.Len(), t.NumCols())
	}
	src, err := os.ReadFile(cfg.constraintsPath)
	if err != nil {
		return nil, nil, err
	}
	constraints, err := logic.ParseConstraints(string(src))
	if err != nil {
		return nil, nil, err
	}
	return cat, constraints, nil
}

// bootCold builds the checker from CSV files and the constraints file. With
// a (fresh) store, it seals the loaded state as the epoch-1 snapshot so a
// restart never needs the CSV files again.
//
//cv:owner worker
func bootCold(cfg bootConfig, st *store.Store) (*bootResult, error) {
	if len(cfg.tables) == 0 {
		if st != nil {
			return nil, errors.New("empty data directory and no -table flags: nothing to serve")
		}
		return nil, errors.New("no -table flags: nothing to serve")
	}
	if cfg.constraintsPath == "" {
		return nil, errors.New("-constraints is required")
	}
	cat, constraints, err := loadCatalog(cfg)
	if err != nil {
		return nil, err
	}
	chk := core.New(cat, core.Options{NodeBudget: cfg.budget})
	for _, tf := range cfg.tables {
		ix, err := chk.BuildIndex(tf.name, tf.name, nil, cfg.method)
		if err != nil {
			cfg.logf("index %s: %v (constraints on it fall back to SQL)", tf.name, err)
			continue
		}
		cfg.logf("index %s: %d nodes", tf.name, ix.NodeCount())
	}
	res := &bootResult{chk: chk, constraints: constraints, st: st, initialEpoch: 1}
	if st != nil {
		if err := st.WriteSnapshot(chk, store.RenderConstraints(constraints), 1); err != nil {
			return nil, fmt.Errorf("writing initial snapshot: %w", err)
		}
		cfg.logf("sealed initial snapshot at epoch 1 in %s", cfg.dataDir)
	}
	return res, nil
}
