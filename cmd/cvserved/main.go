// Command cvserved runs the constraint-checking system as a long-lived
// HTTP/JSON daemon. It bootstraps tables from CSV files, builds the logical
// indices once, registers a set of named constraints, and then serves
// checks, violation-witness queries and incremental updates over HTTP,
// serializing all BDD work through internal/service's single kernel worker.
//
// Usage:
//
//	cvserved -addr :8080 \
//	         -table CUST=cust.csv -table CONS=cons.csv \
//	         -share city,areacode \
//	         -constraints rules.txt [-order prob] [-budget 1000000] \
//	         [-queue 64] [-timeout 30s] [-nodes-per-sec 0] [-replicas 0] \
//	         [-data-dir /var/lib/cv -fsync batch -snapshot-every 64 -retain 4]
//
// With -data-dir, every acknowledged update batch is WAL-logged before its
// acknowledgment and periodic snapshots seal the state; a restart with the
// same -data-dir boots from snapshot + WAL replay, ignoring the CSV flags,
// and /check accepts ?epoch=N for point-in-time reads at retained epochs.
// A damaged or newer-format data directory refuses to start (no silent CSV
// fallback). cvstore inspects, verifies and compacts the directory offline.
//
// With -shards N -shard-key TABLE.COL the daemon partitions the catalog by
// the key column's values across N in-process shard kernels behind a
// scatter-gather coordinator: shard-local constraints fan out and merge,
// the rest run on a residual kernel over the full catalog. With
// -coordinator -worker-urls u0,u1,... the same coordinator runs over
// external single-kernel cvserved workers, each serving one partition (cut
// offline with cvshard). Both forms boot cold from CSV and refuse
// -data-dir/-follow; /statsz gains a per-shard block and /metricsz rolls up
// cv_shard_* series labeled by shard.
//
// With -follow <leader-url> (requires -data-dir) the daemon runs as a
// read-only follower: an empty data directory bootstraps from the leader's
// newest snapshot, then the leader's WAL is tailed over /wal long-polls and
// every acknowledged epoch is applied through the same incremental
// maintenance path, logged locally, and published to the read pool. /check
// and /witnesses serve as usual (-max-lag bounds their staleness); /update
// answers 421 naming the leader. Any server with -data-dir serves GET
// /snapshot/{epoch} and GET /wal, so followers can chain.
//
// Endpoints:
//
//	POST /check      {"constraints": ["nj_codes"], "text": "...", "timeout_ms": 500, "node_budget": 0}
//	POST /witnesses  {"constraint": "nj_codes", "limit": 10}
//	POST /update     {"updates": [{"table": "CUST", "op": "insert", "values": ["Toronto","416","Ontario"]}]}
//	GET  /healthz
//	GET  /statsz
//	GET  /metricsz   (Prometheus text exposition)
//
// Appending ?trace=1 to the POST endpoints returns per-stage spans with BDD
// kernel deltas. -pprof additionally serves net/http/pprof under
// /debug/pprof/.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/store"
)

type tableFlag struct {
	name, path string
}

func main() {
	var tables []tableFlag
	flag.Func("table", "NAME=path.csv (repeatable)", func(s string) error {
		name, path, ok := strings.Cut(s, "=")
		if !ok {
			return fmt.Errorf("want NAME=path.csv, got %q", s)
		}
		tables = append(tables, tableFlag{name, path})
		return nil
	})
	addr := flag.String("addr", ":8080", "listen address")
	share := flag.String("share", "", "comma-separated column names shared across tables")
	constraintsPath := flag.String("constraints", "", "constraints file (required)")
	orderFlag := flag.String("order", "prob", "variable ordering: prob|maxinf|random|schema")
	budget := flag.Int("budget", core.DefaultNodeBudget, "BDD node budget (negative = unlimited)")
	queue := flag.Int("queue", 0, "admission queue depth per request kind (0 = default)")
	maxBatch := flag.Int("max-batch", 0, "max update tuples coalesced per index-maintenance batch (0 = default)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request deadline")
	nodesPerSec := flag.Int("nodes-per-sec", 0, "map request deadlines to BDD node budgets at this rate (0 = off)")
	replicas := flag.Int("replicas", 0, "replicated read-pool size for /check and /witnesses (0 = GOMAXPROCS, negative = disabled)")
	maxBody := flag.Int64("max-body", 0, "request body cap in bytes, rejected with 413 beyond it (0 = 8 MiB default, negative = uncapped)")
	slowReq := flag.Duration("slow-request", 0, "log requests slower than this with per-stage spans (0 = off)")
	pprofOn := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	dataDir := flag.String("data-dir", "", "durability directory: WAL + epoch snapshots; warm restart prefers it over CSV")
	fsyncFlag := flag.String("fsync", "batch", "WAL fsync policy: batch|interval|off")
	fsyncInterval := flag.Duration("fsync-interval", 100*time.Millisecond, "max time between fsyncs with -fsync interval")
	snapshotEvery := flag.Int("snapshot-every", 0, "write a snapshot after this many update batches (0 = default 64 when -data-dir is set)")
	snapshotBytes := flag.Int64("snapshot-bytes", 0, "write a snapshot when the WAL reaches this size (0 = off)")
	retain := flag.Int("retain", 0, "snapshots retained for ?epoch=N reads (0 = default 4)")
	follow := flag.String("follow", "", "leader base URL: run as a read-only follower replicating its snapshot + WAL (requires -data-dir)")
	maxLag := flag.Uint64("max-lag", 0, "refuse live reads with 503 when more than this many epochs behind the leader (0 = serve at any staleness)")
	pollWait := flag.Duration("poll-wait", 0, "leader /wal long-poll duration (0 = default 10s)")
	reorder := flag.Bool("reorder", false, "sift the BDD variable order between update batches when the kernel grows")
	reorderGrowth := flag.Float64("reorder-growth", 0, "reorder when live nodes exceed this factor of the post-reorder baseline (0 = default 2.0)")
	reorderMinNodes := flag.Int("reorder-min-nodes", 0, "never reorder kernels smaller than this many live nodes (0 = default 4096)")
	shards := flag.Int("shards", 0, "partition the catalog across this many in-process shard kernels behind a scatter-gather coordinator (requires -shard-key)")
	shardKey := flag.String("shard-key", "", "TABLE.COLUMN whose values partition the catalog; tables sharing the column's domain co-partition, others broadcast")
	shardMode := flag.String("shard-mode", "hash", "partitioning function: hash|range")
	shardBounds := flag.String("shard-bounds", "", "comma-separated sorted split points for -shard-mode range (N-1 bounds for N shards)")
	coordinatorMode := flag.Bool("coordinator", false, "serve as a scatter-gather coordinator over external shard workers (requires -worker-urls)")
	workerURLs := flag.String("worker-urls", "", "comma-separated shard worker base URLs in shard order, e.g. http://s0:8080,http://s1:8080")
	readHeaderTimeout := flag.Duration("read-header-timeout", 10*time.Second, "http.Server ReadHeaderTimeout (slowloris guard)")
	readTimeout := flag.Duration("read-timeout", time.Minute, "http.Server ReadTimeout")
	writeTimeout := flag.Duration("write-timeout", 2*time.Minute, "http.Server WriteTimeout")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout")
	flag.Parse()

	// Without a data directory the CSV flags are mandatory; with one, a warm
	// restart needs neither (boot validates the cold-start combination). A
	// follower bootstraps from the leader, so it only needs the data
	// directory its replicated state lives in.
	if *follow != "" && *dataDir == "" {
		fatal(errors.New("-follow requires -data-dir (the follower's replicated state lives there)"))
	}
	if *follow == "" && *dataDir == "" && (len(tables) == 0 || *constraintsPath == "") {
		flag.Usage()
		os.Exit(2)
	}
	method, err := core.ParseOrderingMethod(*orderFlag)
	if err != nil {
		fatal(err)
	}
	fsync, err := store.ParseFsyncPolicy(*fsyncFlag)
	if err != nil {
		fatal(err)
	}

	shared := map[string]string{}
	if *share != "" {
		for _, col := range strings.Split(*share, ",") {
			shared[strings.TrimSpace(col)] = strings.TrimSpace(col)
		}
	}

	bcfg := bootConfig{
		tables:          tables,
		shared:          shared,
		constraintsPath: *constraintsPath,
		method:          method,
		budget:          *budget,
		dataDir:         *dataDir,
		fsync:           fsync,
		fsyncInterval:   *fsyncInterval,
		retain:          *retain,
		follow:          *follow,
		logf:            log.Printf,
	}

	var handler http.Handler
	var shutdown func()
	if *shards > 0 || *coordinatorMode || *workerURLs != "" {
		h, closeCoord, err := bootSharded(shardBootConfig{
			bootConfig:  bcfg,
			shards:      *shards,
			key:         *shardKey,
			mode:        *shardMode,
			bounds:      *shardBounds,
			coordinator: *coordinatorMode,
			workerURLs:  *workerURLs,
			queue:       *queue,
			timeout:     *timeout,
		})
		if err != nil {
			fatal(err)
		}
		handler, shutdown = h, closeCoord
	} else {
		res, err := boot(bcfg)
		if err != nil {
			fatal(err)
		}

		var followerOpts *service.FollowerOptions
		if *follow != "" {
			followerOpts = &service.FollowerOptions{URL: *follow, MaxLag: *maxLag, PollWait: *pollWait}
		}
		srv, err := service.New(res.chk, res.constraints, service.Options{
			QueueDepth:           *queue,
			MaxBatch:             *maxBatch,
			DefaultTimeout:       *timeout,
			NodesPerSecond:       *nodesPerSec,
			Replicas:             *replicas,
			MaxBodyBytes:         *maxBody,
			SlowRequest:          *slowReq,
			Store:                res.st,
			SnapshotEveryBatches: *snapshotEvery,
			SnapshotWALBytes:     *snapshotBytes,
			InitialEpoch:         res.initialEpoch,
			Reorder:              *reorder,
			ReorderGrowth:        *reorderGrowth,
			ReorderMinNodes:      *reorderMinNodes,
			WriteTimeout:         *writeTimeout,
			Follower:             followerOpts,
		})
		if err != nil {
			fatal(err)
		}
		for _, name := range srv.Constraints() {
			log.Printf("constraint %s registered", name)
		}
		handler = srv.Handler()
		shutdown = func() {
			srv.Close()
			if res.st != nil {
				if err := res.st.Close(); err != nil {
					log.Printf("closing data directory: %v", err)
				}
			}
		}
	}
	if *pprofOn {
		// The service mux only routes its own endpoints, so pprof mounts on a
		// wrapper mux rather than http.DefaultServeMux (which other packages
		// could pollute).
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		log.Printf("pprof enabled under /debug/pprof/")
	}

	// The daemon holds client connections open across slow BDD evaluations,
	// so the server timeouts must exist (a default http.Server never times a
	// client out — one slow-written request per connection pins a goroutine
	// and its buffers forever).
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Printf("shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			httpSrv.Close()
		}
	}()

	log.Printf("cvserved listening on %s", *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	shutdown()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cvserved:", err)
	os.Exit(2)
}
