// Command cvserved runs the constraint-checking system as a long-lived
// HTTP/JSON daemon. It bootstraps tables from CSV files, builds the logical
// indices once, registers a set of named constraints, and then serves
// checks, violation-witness queries and incremental updates over HTTP,
// serializing all BDD work through internal/service's single kernel worker.
//
// Usage:
//
//	cvserved -addr :8080 \
//	         -table CUST=cust.csv -table CONS=cons.csv \
//	         -share city,areacode \
//	         -constraints rules.txt [-order prob] [-budget 1000000] \
//	         [-queue 64] [-timeout 30s] [-nodes-per-sec 0] [-replicas 0]
//
// Endpoints:
//
//	POST /check      {"constraints": ["nj_codes"], "text": "...", "timeout_ms": 500, "node_budget": 0}
//	POST /witnesses  {"constraint": "nj_codes", "limit": 10}
//	POST /update     {"updates": [{"table": "CUST", "op": "insert", "values": ["Toronto","416","Ontario"]}]}
//	GET  /healthz
//	GET  /statsz
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/relation"
	"repro/internal/service"
)

type tableFlag struct {
	name, path string
}

func main() {
	var tables []tableFlag
	flag.Func("table", "NAME=path.csv (repeatable)", func(s string) error {
		name, path, ok := strings.Cut(s, "=")
		if !ok {
			return fmt.Errorf("want NAME=path.csv, got %q", s)
		}
		tables = append(tables, tableFlag{name, path})
		return nil
	})
	addr := flag.String("addr", ":8080", "listen address")
	share := flag.String("share", "", "comma-separated column names shared across tables")
	constraintsPath := flag.String("constraints", "", "constraints file (required)")
	orderFlag := flag.String("order", "prob", "variable ordering: prob|maxinf|random|schema")
	budget := flag.Int("budget", core.DefaultNodeBudget, "BDD node budget (negative = unlimited)")
	queue := flag.Int("queue", 0, "admission queue depth per request kind (0 = default)")
	maxBatch := flag.Int("max-batch", 0, "max update tuples coalesced per index-maintenance batch (0 = default)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request deadline")
	nodesPerSec := flag.Int("nodes-per-sec", 0, "map request deadlines to BDD node budgets at this rate (0 = off)")
	replicas := flag.Int("replicas", 0, "replicated read-pool size for /check and /witnesses (0 = GOMAXPROCS, negative = disabled)")
	flag.Parse()

	if len(tables) == 0 || *constraintsPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	method, err := core.ParseOrderingMethod(*orderFlag)
	if err != nil {
		fatal(err)
	}

	shared := map[string]string{}
	if *share != "" {
		for _, col := range strings.Split(*share, ",") {
			shared[strings.TrimSpace(col)] = strings.TrimSpace(col)
		}
	}

	cat := relation.NewCatalog()
	for _, tf := range tables {
		t, err := cat.ReadCSVFile(tf.name, tf.path, shared)
		if err != nil {
			fatal(err)
		}
		log.Printf("loaded %s: %d rows, %d columns", t.Name(), t.Len(), t.NumCols())
	}

	src, err := os.ReadFile(*constraintsPath)
	if err != nil {
		fatal(err)
	}
	constraints, err := logic.ParseConstraints(string(src))
	if err != nil {
		fatal(err)
	}

	chk := core.New(cat, core.Options{NodeBudget: *budget})
	for _, tf := range tables {
		ix, err := chk.BuildIndex(tf.name, tf.name, nil, method)
		if err != nil {
			log.Printf("index %s: %v (constraints on it fall back to SQL)", tf.name, err)
			continue
		}
		log.Printf("index %s: %d nodes", tf.name, ix.NodeCount())
	}

	srv, err := service.New(chk, constraints, service.Options{
		QueueDepth:     *queue,
		MaxBatch:       *maxBatch,
		DefaultTimeout: *timeout,
		NodesPerSecond: *nodesPerSec,
		Replicas:       *replicas,
	})
	if err != nil {
		fatal(err)
	}
	for _, name := range srv.Constraints() {
		log.Printf("constraint %s registered", name)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Printf("shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			httpSrv.Close()
		}
	}()

	log.Printf("cvserved listening on %s", *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	srv.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cvserved:", err)
	os.Exit(2)
}
