// Command promcheck validates Prometheus text exposition read from stdin
// (or a file argument) and exits non-zero on the first violation, printing
// it. The CI smoke step pipes a live /metricsz scrape through it, so a
// malformed exposition fails the build rather than a scraper at 3am.
//
// Usage:
//
//	curl -s localhost:8080/metricsz | promcheck
//	promcheck scrape.txt
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

func main() {
	var in io.Reader = os.Stdin
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	if err := obs.ValidateExposition(in); err != nil {
		fatal(err)
	}
	fmt.Println("promcheck: exposition OK")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "promcheck:", err)
	os.Exit(1)
}
